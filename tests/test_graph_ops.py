"""Unit tests for graph traversal / subgraph / region operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    bfs_levels,
    bfs_order,
    bfs_regions,
    connected_components,
    degree_histogram,
    from_edges,
    grid_2d,
    induced_subgraph,
    is_connected,
    largest_component,
    path_graph,
)
from repro.graph.ops import _ranges


class TestRanges:
    def test_simple(self):
        assert _ranges(np.array([2, 3])).tolist() == [0, 1, 0, 1, 2]

    def test_zero_segments(self):
        assert _ranges(np.array([2, 0, 3])).tolist() == [0, 1, 0, 1, 2]
        assert _ranges(np.array([0, 2])).tolist() == [0, 1]
        assert _ranges(np.array([2, 0])).tolist() == [0, 1]
        assert _ranges(np.array([0, 0, 1, 0])).tolist() == [0]

    def test_empty(self):
        assert _ranges(np.array([], dtype=np.int64)).size == 0
        assert _ranges(np.array([0, 0])).size == 0


class TestBfs:
    def test_path_levels(self):
        g = path_graph(5)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_levels(g, 2).tolist() == [2, 1, 0, 1, 2]

    def test_multi_source(self):
        g = path_graph(5)
        assert bfs_levels(g, [0, 4]).tolist() == [0, 1, 2, 1, 0]

    def test_unreachable_is_minus_one(self):
        g = from_edges(4, [(0, 1)])
        lv = bfs_levels(g, 0)
        assert lv.tolist() == [0, 1, -1, -1]

    def test_order_is_level_monotone(self, mesh500):
        order = bfs_order(mesh500, 0)
        lv = bfs_levels(mesh500, 0)
        assert np.all(np.diff(lv[order]) >= 0)
        assert order[0] == 0

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_levels(path_graph(3), 10)

    def test_grid_levels_are_manhattan(self):
        g = grid_2d(4, 4)
        lv = bfs_levels(g, 0)
        for i in range(4):
            for j in range(4):
                assert lv[i * 4 + j] == i + j


class TestComponents:
    def test_connected_grid(self, small_grid):
        assert is_connected(small_grid)
        assert np.all(connected_components(small_grid) == 0)

    def test_two_components(self):
        g = from_edges(5, [(0, 1), (2, 3), (3, 4)])
        comp = connected_components(g)
        assert comp.tolist() == [0, 0, 1, 1, 1]

    def test_largest_component(self):
        g = from_edges(5, [(0, 1), (2, 3), (3, 4)])
        sub, keep = largest_component(g)
        assert keep.tolist() == [2, 3, 4]
        assert sub.nvtxs == 3 and sub.nedges == 2

    def test_empty_graph_connected(self):
        from repro.graph import Graph

        assert is_connected(Graph([0], []))


class TestInducedSubgraph:
    def test_identity(self, small_grid):
        sub = induced_subgraph(small_grid, np.arange(small_grid.nvtxs))
        assert sub == small_grid

    def test_preserves_weights(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[5, 6, 7],
                       vwgt=[[1], [2], [3], [4]])
        sub = induced_subgraph(g, [1, 2, 3])
        assert sub.nvtxs == 3
        assert sub.nedges == 2
        assert sub.total_adjwgt() == 13
        assert sub.vwgt[:, 0].tolist() == [2, 3, 4]

    def test_relabels_in_request_order(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        sub = induced_subgraph(g, [2, 1])
        # vertex 2 -> 0, vertex 1 -> 1; edge (1, 2) survives.
        assert sub.nedges == 1
        assert sorted(sub.neighbors(0).tolist()) == [1]

    def test_duplicate_ids_rejected(self, small_grid):
        with pytest.raises(GraphError):
            induced_subgraph(small_grid, [0, 0])

    def test_out_of_range_rejected(self, small_grid):
        with pytest.raises(GraphError):
            induced_subgraph(small_grid, [small_grid.nvtxs])

    def test_empty_selection(self, small_grid):
        sub = induced_subgraph(small_grid, [])
        assert sub.nvtxs == 0 and sub.nedges == 0

    def test_validates(self, mesh500):
        keep = np.arange(0, 500, 2)
        induced_subgraph(mesh500, keep).validate()

    def test_coords_carried(self, small_grid):
        sub = induced_subgraph(small_grid, [3, 4])
        assert sub.coords is not None
        assert np.array_equal(sub.coords, small_grid.coords[[3, 4]])


class TestBfsRegions:
    def test_covers_all_vertices(self, mesh500):
        r = bfs_regions(mesh500, 16, seed=0)
        assert r.shape == (500,)
        assert set(np.unique(r)) == set(range(16))

    def test_regions_reasonably_sized(self, mesh2000):
        r = bfs_regions(mesh2000, 8, seed=1)
        sizes = np.bincount(r, minlength=8)
        assert sizes.min() > 0

    def test_regions_contiguous(self, mesh500):
        r = bfs_regions(mesh500, 8, seed=2)
        # Every region's induced subgraph must be connected (BFS growth).
        for rid in range(8):
            sub = induced_subgraph(mesh500, np.flatnonzero(r == rid))
            assert is_connected(sub), f"region {rid} disconnected"

    def test_more_regions_than_vertices(self):
        g = path_graph(3)
        r = bfs_regions(g, 10, seed=0)
        assert r.max() < 10

    def test_deterministic(self, mesh500):
        a = bfs_regions(mesh500, 8, seed=42)
        b = bfs_regions(mesh500, 8, seed=42)
        assert np.array_equal(a, b)

    def test_bad_nregions(self, mesh500):
        with pytest.raises(GraphError):
            bfs_regions(mesh500, 0)


def test_degree_histogram(small_grid):
    hist = degree_histogram(small_grid)
    # 8x6 grid: 4 corners (deg 2), edges (deg 3), interior (deg 4)
    assert hist[2] == 4
    assert hist.sum() == small_grid.nvtxs
