"""Parity and property tests for the vectorized/incremental hot-path
kernels (PR 2).

Every optimized kernel is pinned against the pre-existing per-vertex
implementation, kept in-tree as a ``_reference_*`` oracle:

* bulk greedy matchers (HEM/BEM) vs :func:`_reference_greedy_matching`;
* :func:`random_matching` vs :func:`_reference_random_matching`;
* vectorised :meth:`TwoWayState.build_queues` vs the per-vertex oracle
  (identical pop sequences);
* maintained ``id/ed``/boundary state of :class:`KWayState` and
  :class:`TwoWayState` vs from-scratch recomputation after random move
  sequences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen.matching import (
    _balance_score,
    _edge_balance_scores,
    _greedy_matching,
    _reference_greedy_matching,
    _reference_random_matching,
    fast_heavy_edge_matching,
    is_matching,
    matching_to_cmap,
    random_matching,
    two_hop_matching,
)
from repro.graph import Graph, contract, from_edges, mesh_like
from repro.refine.fm2way import TwoWayState
from repro.refine.gain import compute_2way_degrees, edge_cut, kway_degrees
from repro.refine.kwayref import KWayState

SEEDS = [0, 7, 42]


def _rand_graph(n, extra, seed, m=1, weighted=True):
    rng = np.random.default_rng(seed)
    edges = {(i - 1, i) for i in range(1, n)}
    for _ in range(extra):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    w = rng.integers(1, 10, size=len(edges)) if weighted else None
    g = from_edges(n, np.asarray(edges), w)
    if m > 1:
        vw = rng.integers(0, 20, size=(n, m))
        for c in range(m):
            if vw[:, c].sum() == 0:
                vw[int(rng.integers(n)), c] = 1
        g = g.with_vwgt(vw.astype(np.int64))
    return g


def _graphs():
    out = [mesh_like(400, seed=3)]
    rng = np.random.default_rng(11)
    vw = rng.integers(1, 8, size=(out[0].nvtxs, 3)).astype(np.int64)
    out.append(out[0].with_vwgt(vw))
    out.append(_rand_graph(120, 300, seed=5, m=2))
    out.append(_rand_graph(60, 40, seed=9, m=4))
    return out


# --------------------------------------------------------------------- #
# Matching kernels
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("primary", ["heavy", "balanced"])
def test_greedy_matching_parity(primary):
    for g in _graphs():
        for seed in SEEDS:
            got = _greedy_matching(g, seed, None, primary)
            want = _reference_greedy_matching(g, seed, None, primary)
            assert np.array_equal(got, want)
            assert is_matching(g, got)


def test_edge_balance_scores_match_scalar():
    g = _rand_graph(50, 120, seed=2, m=3)
    t = g.vwgt.sum(axis=0, dtype=np.float64)
    t[t == 0] = 1.0
    relw = g.vwgt / t
    scores = _edge_balance_scores(g, relw)
    src = np.repeat(np.arange(g.nvtxs), np.diff(g.xadj))
    for i in range(g.adjncy.shape[0]):
        assert scores[i] == _balance_score(relw[src[i]] + relw[g.adjncy[i]])


def test_random_matching_parity():
    for g in _graphs():
        for seed in SEEDS:
            got = random_matching(g, seed)
            want = _reference_random_matching(g, seed)
            assert np.array_equal(got, want)
            assert is_matching(g, got)


def test_two_hop_matching_valid_and_deterministic():
    # A star stalls plain matching; two-hop must pair the leaves.
    star = from_edges(6, np.array([[0, i] for i in range(1, 6)]))
    match = np.arange(6, dtype=np.int64)
    match[0], match[1] = 1, 0  # hub already taken
    out1 = two_hop_matching(star, match, seed=3)
    out2 = two_hop_matching(star, match, seed=3)
    assert np.array_equal(out1, out2)
    assert np.array_equal(out1[out1], np.arange(6))
    assert (out1 != np.arange(6)).sum() > (match != np.arange(6)).sum()
    # Already-matched pairs are untouched.
    assert out1[0] == 1 and out1[1] == 0


def test_fhem_balanced_tiebreak():
    # Path b - a - c with equal edge weights: the balanced tie-break must
    # pick the partner whose combined weight vector is more uniform.
    g = from_edges(3, np.array([[0, 1], [0, 2]]))
    vw = np.array([[1, 1], [9, 1], [2, 3]], dtype=np.int64)  # a, b, c
    g = g.with_vwgt(vw)
    t = vw.sum(axis=0).astype(np.float64)
    relw = vw / t
    s_b = _balance_score(relw[0] + relw[1])
    s_c = _balance_score(relw[0] + relw[2])
    assert s_b != s_c
    best = 1 if s_b < s_c else 2
    for seed in SEEDS:
        match = fast_heavy_edge_matching(g, seed, relw=relw)
        assert match[0] == best and match[best] == 0
    # Without relw the choice falls to random jitter; just check validity.
    assert is_matching(g, fast_heavy_edge_matching(g, 0))


def test_fhem_valid_on_meshes():
    for g in _graphs():
        t = g.vwgt.sum(axis=0, dtype=np.float64)
        t[t == 0] = 1.0
        m = fast_heavy_edge_matching(g, 1, relw=g.vwgt / t)
        assert is_matching(g, m)


def test_is_matching_vectorized():
    g = from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
    good = np.array([1, 0, 3, 2])
    assert is_matching(g, good)
    assert not is_matching(g, np.array([3, 1, 2, 0]))  # 0-3 not an edge
    assert not is_matching(g, np.array([1, 2, 0, 3]))  # not involutive
    assert not is_matching(g, np.array([1, 0, 3, 9]))  # out of range
    assert is_matching(g, np.arange(4))  # empty matching


# --------------------------------------------------------------------- #
# 2-way FM state
# --------------------------------------------------------------------- #

def test_build_queues_parity_pop_sequences():
    for g in _graphs():
        rng = np.random.default_rng(17)
        where = rng.integers(0, 2, size=g.nvtxs).astype(np.int64)
        for boundary_only in (True, False):
            st_a = TwoWayState(g, where.copy())
            st_b = TwoWayState(g, where.copy())
            qa = st_a.build_queues(boundary_only=boundary_only)
            qb = st_b._reference_build_queues(boundary_only=boundary_only)
            for side in range(2):
                for c in range(g.ncon):
                    a, b = qa[side][c], qb[side][c]
                    assert len(a) == len(b)
                    while True:
                        ta, tb = a.pop(), b.pop()
                        assert ta == tb
                        if ta is None:
                            break


def test_build_queues_respects_locked():
    g = _rand_graph(40, 60, seed=1, m=2)
    where = (np.arange(g.nvtxs) % 2).astype(np.int64)
    st = TwoWayState(g, where)
    locked = [False] * g.nvtxs
    locked[0] = locked[5] = True
    queues = st.build_queues(boundary_only=False, locked=locked)
    keys = {k for row in queues for q in row for k in q._prio}
    assert 0 not in keys and 5 not in keys


def test_twoway_state_consistent_after_random_moves():
    for g in _graphs():
        rng = np.random.default_rng(23)
        where = rng.integers(0, 2, size=g.nvtxs).astype(np.int64)
        st = TwoWayState(g, where)
        for v in rng.integers(0, g.nvtxs, size=200).tolist():
            st.move(v)
        id_, ed = compute_2way_degrees(g, st.where)
        assert np.array_equal(st.id_, id_)
        assert np.array_equal(st.ed, ed)
        assert st.cut == edge_cut(g, st.where)
        for side in range(2):
            assert np.allclose(st.pw[side], st.relw[st.where == side].sum(axis=0))


# --------------------------------------------------------------------- #
# K-way state
# --------------------------------------------------------------------- #

def test_kway_state_consistent_after_random_moves():
    for g in _graphs():
        nparts = 5
        rng = np.random.default_rng(31)
        where = rng.integers(0, nparts, size=g.nvtxs).astype(np.int64)
        st = KWayState(g, where, nparts)
        for _ in range(300):
            v = int(rng.integers(g.nvtxs))
            d = int(rng.integers(nparts))
            st.move(v, d)
        id_, ed = kway_degrees(g, st.where)
        assert np.array_equal(st.id_, id_)
        assert np.array_equal(st.ed, ed)
        assert np.array_equal(st.boundary(), st._reference_boundary())
        assert np.array_equal(st.counts, np.bincount(st.where, minlength=nparts))
        for p in range(nparts):
            assert np.allclose(st.pw[p], st.relw[st.where == p].sum(axis=0))


def test_kway_neighbor_weights_matches_bruteforce():
    g = _rand_graph(50, 120, seed=4, m=2)
    nparts = 4
    rng = np.random.default_rng(8)
    where = rng.integers(0, nparts, size=g.nvtxs).astype(np.int64)
    st = KWayState(g, where, nparts)
    for v in range(g.nvtxs):
        want: dict[int, int] = {}
        for u, w in zip(g.neighbors(v).tolist(), g.edge_weights(v).tolist()):
            p = int(where[u])
            want[p] = want.get(p, 0) + w
        assert st.neighbor_weights(v) == want


# --------------------------------------------------------------------- #
# Graph-layer kernels
# --------------------------------------------------------------------- #

def test_contract_validate_audit():
    # The coarse graph must pass full validation when asked for -- the
    # belt-and-braces audit of the validate=False fast path.
    g = _rand_graph(80, 200, seed=6, m=3)
    match = random_matching(g, 0)
    cmap, nc = matching_to_cmap(match)
    coarse = contract(g, cmap, nc, validate=True)
    assert coarse.nvtxs == nc
    assert np.array_equal(coarse.vwgt.sum(axis=0), g.vwgt.sum(axis=0))


def test_validate_composite_key_symmetry_check():
    # Symmetric graph passes; breaking one directed weight fails.
    g = _rand_graph(30, 50, seed=12)
    g.validate()
    bad = g.adjwgt.copy()
    bad[0] += 1
    with pytest.raises(Exception):
        Graph(g.xadj, g.adjncy, g.vwgt, bad)
