"""Docs must not rot: execute every ```python code block in the user-facing
markdown files.

Each file's blocks run top-to-bottom in one shared namespace (so a snippet
may build on the previous one, as a reader would), inside a temporary
working directory (snippets may write trace/SVG files).  A failing snippet
reports the markdown file and the line the block starts on.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: The user-facing documents whose Python snippets must stay runnable.
DOC_FILES = [
    "README.md",
    "docs/tutorial.md",
    "docs/api.md",
    "docs/robustness.md",
    "docs/serving.md",
    "docs/observability.md",
    "docs/performance.md",
    "docs/parallel.md",
]

_FENCE = re.compile(r"^```python\s*$")
_END = re.compile(r"^```\s*$")


def python_blocks(path: Path):
    """Yield ``(start_lineno, source)`` for every ```python fence in ``path``."""
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        if _FENCE.match(lines[i]):
            start = i + 2  # 1-based line of the first code line
            body = []
            i += 1
            while i < len(lines) and not _END.match(lines[i]):
                body.append(lines[i])
                i += 1
            yield start, "\n".join(body)
        i += 1


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_snippets_execute(relpath, tmp_path, monkeypatch):
    path = REPO / relpath
    blocks = list(python_blocks(path))
    assert blocks, f"{relpath} has no ```python blocks -- checker misconfigured?"
    monkeypatch.chdir(tmp_path)  # snippets may write files; keep them out of the repo
    namespace: dict = {"__name__": "__doc_snippet__"}
    for lineno, source in blocks:
        try:
            code = compile(source, f"{relpath}:{lineno}", "exec")
            exec(code, namespace)
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            pytest.fail(
                f"snippet at {relpath}:{lineno} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{source}\n---"
            )


def test_doc_files_exist():
    for relpath in DOC_FILES:
        assert (REPO / relpath).is_file(), relpath
