"""Iterated V-cycles, effort levels and the evolutionary ensemble.

Covers the monotonicity contract (a V-cycle never returns a worse
partition than its input), seeded determinism of every entry point,
constrained coarsening (matched vertices share a constraint label), the
``effort="fast"|"standard"|"high"`` knob on :func:`part_graph`, and the
:func:`evolve` loop's feasibility guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen import coarsen
from repro.errors import OptionsError, PartitionError
from repro.graph import grid_2d, mesh_like
from repro.metrics import edge_cut
from repro.partition import (
    PartitionOptions,
    best_of,
    evolve,
    part_graph,
    vcycle_improve,
    vcycle_once,
)
from repro.weights import max_imbalance


def _interleaved(graph, nparts):
    """A balanced but deliberately bad starting partition."""
    return np.arange(graph.nvtxs, dtype=np.int64) % nparts


class TestVCycleOnce:
    def test_never_worse_and_input_untouched(self, mesh500):
        part = _interleaved(mesh500, 4)
        keep = part.copy()
        before = edge_cut(mesh500, part)
        out = vcycle_once(mesh500, part, 4, seed=3)
        assert np.array_equal(part, keep)          # caller's array intact
        assert edge_cut(mesh500, out) <= before
        assert max_imbalance(mesh500.vwgt, out, 4) <= 1.05 + 1e-9

    def test_improves_bad_interleaved_start(self):
        g = grid_2d(20, 20)
        part = _interleaved(g, 4)                   # every row edge is cut
        out = vcycle_once(g, part, 4, seed=1)
        assert edge_cut(g, out) < edge_cut(g, part)

    def test_seeded_determinism(self, mesh500):
        part = _interleaved(mesh500, 4)
        a = vcycle_once(mesh500, part, 4, seed=11)
        b = vcycle_once(mesh500, part, 4, seed=11)
        c = vcycle_once(mesh500, part, 4, seed=12)
        assert np.array_equal(a, b)
        assert a.shape == c.shape                   # different seed, same contract
        assert edge_cut(mesh500, c) <= edge_cut(mesh500, part)

    def test_rejects_bad_part(self, mesh500):
        with pytest.raises(PartitionError):
            vcycle_once(mesh500, np.zeros(3, dtype=np.int64), 4, seed=0)
        bad = np.zeros(500, dtype=np.int64)
        bad[0] = 7
        with pytest.raises(PartitionError):
            vcycle_once(mesh500, bad, 4, seed=0)

    def test_trivial_nparts_is_identity_copy(self, mesh500):
        part = np.zeros(500, dtype=np.int64)
        out = vcycle_once(mesh500, part, 1, seed=0)
        assert np.array_equal(out, part)
        assert out is not part


class TestConstrainedCoarsening:
    def test_matched_vertices_share_constraint_label(self, mesh500):
        con = _interleaved(mesh500, 4)
        hier = coarsen(mesh500, coarsen_to=40, seed=5, constraint=con)
        fine = con
        for lvl in hier.levels:
            ncoarse = int(lvl.cmap.max()) + 1
            coarse = np.empty(ncoarse, dtype=np.int64)
            coarse[lvl.cmap] = fine
            # Every fine vertex must agree with its coarse image -- i.e. the
            # scatter above is well-defined and no merge crossed a label.
            assert np.array_equal(coarse[lvl.cmap], fine)
            fine = coarse

    def test_projected_cut_is_preserved(self, mesh500):
        part = _interleaved(mesh500, 4)
        hier = coarsen(mesh500, coarsen_to=40, seed=5, constraint=part)
        where, g = part, mesh500
        cut0 = edge_cut(g, where)
        for lvl in hier.levels:
            ncoarse = int(lvl.cmap.max()) + 1
            coarse = np.empty(ncoarse, dtype=np.int64)
            coarse[lvl.cmap] = where
            where = coarse
        assert edge_cut(hier.coarsest, where) == cut0

    def test_bad_constraint_shape_rejected(self, mesh500):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            coarsen(mesh500, coarsen_to=40, seed=5,
                    constraint=np.zeros(7, dtype=np.int64))


class TestVCycleImprove:
    def test_monotone_with_stats(self, mesh500):
        part = _interleaved(mesh500, 4)
        opts = PartitionOptions(seed=4, vcycle_max=4, vcycle_patience=2)
        best, stats = vcycle_improve(mesh500, part, 4, opts)
        assert stats.final_cut == edge_cut(mesh500, best)
        assert stats.final_cut <= stats.initial_cut
        assert stats.initial_cut == edge_cut(mesh500, part)
        assert 1 <= stats.cycles <= 4
        assert 0 <= stats.improved <= stats.cycles

    def test_deterministic(self, mesh500):
        part = _interleaved(mesh500, 4)
        opts = PartitionOptions(seed=9, vcycle_max=3)
        a, sa = vcycle_improve(mesh500, part, 4, opts)
        b, sb = vcycle_improve(mesh500, part, 4, opts)
        assert np.array_equal(a, b)
        assert sa == sb

    def test_validates_budget_options(self):
        with pytest.raises(PartitionError):
            PartitionOptions(vcycle_max=0)
        with pytest.raises(PartitionError):
            PartitionOptions(vcycle_patience=0)


class TestEffortLevels:
    def test_unknown_effort_rejected(self, mesh500):
        with pytest.raises(OptionsError, match="effort"):
            part_graph(mesh500, 4, seed=0, effort="turbo")
        with pytest.raises(OptionsError, match="effort"):
            PartitionOptions(effort="max")

    def test_high_never_worse_than_standard(self, mesh2000):
        std = part_graph(mesh2000, 8, seed=4)
        high = part_graph(mesh2000, 8, seed=4, effort="high")
        assert high.feasible
        assert high.edgecut <= std.edgecut
        assert high.options.effort == "high"       # caller's options preserved

    def test_high_is_deterministic(self, mesh500):
        a = part_graph(mesh500, 4, seed=7, effort="high")
        b = part_graph(mesh500, 4, seed=7, effort="high")
        assert np.array_equal(a.part, b.part)
        assert a.edgecut == b.edgecut

    def test_standard_unaffected_by_new_fields(self, mesh500):
        # effort/vcycle_* must not perturb the default pipeline: explicit
        # standard == implicit default, bit for bit.
        implicit = part_graph(mesh500, 4, seed=4)
        explicit = part_graph(mesh500, 4, seed=4, effort="standard")
        assert np.array_equal(implicit.part, explicit.part)

    def test_fast_is_feasible_and_deterministic(self, mesh500):
        a = part_graph(mesh500, 4, seed=5, effort="fast")
        b = part_graph(mesh500, 4, seed=5, effort="fast")
        assert a.feasible
        assert np.array_equal(a.part, b.part)
        assert a.options.effort == "fast"


class TestEvolve:
    def test_front_is_feasible_and_history_monotone(self, mesh500):
        res = evolve(mesh500, 4, population=3, generations=2, seed=2)
        assert res.best.feasible
        assert res.front and all(m.feasible for m in res.front)
        assert res.history == sorted(res.history, reverse=True)
        assert res.best.edgecut == res.history[-1]
        assert res.best.edgecut == min(m.cut for m in res.front)

    def test_combine_child_never_worse_than_better_parent(self, mesh500):
        # The overlap constraint refines both parents, so the better parent
        # projects exactly; feasibility and cut can only improve.
        res = evolve(mesh500, 4, population=4, generations=3, seed=6)
        ens = best_of(mesh500, 4, nseeds=4, seed=6)
        assert res.best.edgecut <= ens.best.edgecut

    def test_deterministic(self, mesh500):
        a = evolve(mesh500, 4, population=3, generations=2, seed=8)
        b = evolve(mesh500, 4, population=3, generations=2, seed=8)
        assert np.array_equal(a.best.part, b.best.part)
        assert a.history == b.history

    def test_rejects_bad_population(self, mesh500):
        with pytest.raises(PartitionError):
            evolve(mesh500, 4, population=1, seed=0)


class TestEnsembleOptionKwargsGuard:
    def test_best_of_rejects_options_plus_kwargs(self, mesh500):
        opts = PartitionOptions(seed=1)
        with pytest.raises(OptionsError, match="not both"):
            best_of(mesh500, 4, nseeds=2, options=opts, refine_passes=2)

    def test_seed_inside_forwarded_kwargs_rejected(self):
        # `seed` is a named ensemble parameter, so it can only reach the
        # forwarded-kwargs dict through a programmatic call path; the guard
        # still refuses it rather than silently collapsing member seeds.
        from repro.partition.ensemble import _reject_options_kwargs

        with pytest.raises(OptionsError, match="per-member seeds"):
            _reject_options_kwargs(None, {"seed": 3})

    def test_evolve_rejects_options_plus_kwargs(self, mesh500):
        opts = PartitionOptions(seed=1)
        with pytest.raises(OptionsError, match="not both"):
            evolve(mesh500, 4, population=2, generations=0,
                   options=opts, refine_passes=2)
