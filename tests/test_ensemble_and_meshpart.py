"""Tests for the ensemble runner, NPZ IO, and mesh-level partitioning."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError, PartitionError, WeightError
from repro.graph import load_npz, mesh_like, save_npz
from repro.mesh import (
    delaunay_triangulation,
    nodes_from_elements,
    partition_mesh,
    triangle_grid,
)
from repro.partition import best_of
from repro.weights import random_vwgt


class TestNpzIO:
    def test_roundtrip_with_weights_and_coords(self):
        g = mesh_like(200, seed=0).with_vwgt(random_vwgt(200, 3, seed=1))
        buf = io.BytesIO()
        save_npz(g, buf)
        buf.seek(0)
        g2 = load_npz(buf)
        assert g2 == g

    def test_roundtrip_file(self, tmp_path, mesh500):
        p = tmp_path / "g.npz"
        save_npz(mesh500, p)
        assert load_npz(p) == mesh500

    def test_missing_array_rejected(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez_compressed(p, xadj=np.zeros(1, dtype=np.int64))
        with pytest.raises(GraphFormatError):
            load_npz(p)

    def test_corrupt_structure_rejected(self, tmp_path):
        p = tmp_path / "bad2.npz"
        # Asymmetric adjacency must be caught by validation on load.
        np.savez_compressed(
            p,
            xadj=np.array([0, 1, 1]),
            adjncy=np.array([1]),
            adjwgt=np.array([1]),
            vwgt=np.ones((2, 1), dtype=np.int64),
        )
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            load_npz(p)


class TestBestOf:
    def test_best_is_minimum_cut_feasible(self, mesh2000):
        ens = best_of(mesh2000, 8, nseeds=3, seed=0)
        assert ens.best.edgecut == min(ens.cuts)
        assert ens.best.feasible
        assert ens.feasible_runs >= 1
        assert len(ens.cuts) == 3

    def test_spread_is_small_on_meshes(self, mesh2000):
        """The paper's three-seed variance claim: runs agree within a few
        percent (we allow 25% at this tiny scale)."""
        ens = best_of(mesh2000, 8, nseeds=3, seed=1)
        assert ens.cut_spread <= 0.25

    def test_deterministic(self, mesh500):
        a = best_of(mesh500, 4, nseeds=2, seed=5)
        b = best_of(mesh500, 4, nseeds=2, seed=5)
        assert a.cuts == b.cuts
        assert np.array_equal(a.best.part, b.best.part)

    def test_nseeds_validation(self, mesh500):
        with pytest.raises(PartitionError):
            best_of(mesh500, 4, nseeds=0)

    def test_options_object_supported(self, mesh500):
        from repro.partition import PartitionOptions

        ens = best_of(mesh500, 4, nseeds=2, seed=6,
                      options=PartitionOptions(matching="rm"))
        assert ens.best.options.matching == "rm"

    def test_summary(self, mesh500):
        ens = best_of(mesh500, 2, nseeds=2, seed=7)
        assert "best of 2" in ens.summary()


class TestPartitionMesh:
    def test_grid_partition(self):
        mesh = triangle_grid(20, 20)
        mp = partition_mesh(mesh, 4, seed=0)
        assert mp.element_part.shape == (mesh.nelements,)
        assert mp.node_part.shape == (mesh.nnodes,)
        assert mp.result.feasible
        assert mp.nparts == 4

    def test_node_part_follows_elements(self):
        mesh = triangle_grid(10, 10)
        mp = partition_mesh(mesh, 2, seed=1)
        # A node completely surrounded by part-p elements must be in p.
        for node in range(mesh.nnodes):
            owners = mp.element_part[np.any(mesh.elements == node, axis=1)]
            if owners.size and np.all(owners == owners[0]):
                assert mp.node_part[node] == owners[0]

    def test_element_weights(self):
        mesh = delaunay_triangulation(500, seed=2)
        w = random_vwgt(mesh.nelements, 2, low=1, high=5, seed=3)
        mp = partition_mesh(mesh, 4, element_weights=w, ubvec=1.10, seed=4)
        assert mp.result.ncon == 2
        assert mp.result.max_imbalance <= 1.12

    def test_bad_weights_rejected(self):
        mesh = triangle_grid(5, 5)
        with pytest.raises(WeightError):
            partition_mesh(mesh, 2, element_weights=np.ones((3, 1)))

    def test_nodes_from_elements_validation(self):
        mesh = triangle_grid(4, 4)
        with pytest.raises(WeightError):
            nodes_from_elements(mesh, np.zeros(5), 2)
