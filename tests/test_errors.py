"""Error-taxonomy coverage: every public exception in :mod:`repro.errors`
is raised by a real trigger and caught as :class:`ReproError`.

The meta-test at the bottom introspects the module so a future exception
class cannot be added without extending this suite.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

import repro.errors as errors_mod
from repro.errors import (
    BalanceError,
    CommError,
    ConvergenceError,
    DegradedResult,
    FaultError,
    FaultSpecError,
    GraphError,
    GraphFormatError,
    ImproverRejectedError,
    MessageDropError,
    ObsError,
    OptionsError,
    PartitionError,
    PermanentCommError,
    PhaseTimeoutError,
    RankCrashedError,
    RankUnavailableError,
    ReproError,
    RetryExhaustedError,
    ServeBatchError,
    ServeError,
    ServeOverloadError,
    ServeTimeoutError,
    ServiceClosedError,
    TransientCommError,
    WeightError,
)
from repro.faults import FaultSpec, FaultyCluster, RecoveryPolicy, run_with_retries
from repro.graph import Graph, grid_2d, mesh_like
from repro.parallel import SimCluster, parallel_part_graph
from repro.partition import part_graph

# Exception -> the test method that triggers it (kept in sync by
# test_every_public_exception_is_covered below).
COVERED = {}


def covers(*exc_types):
    def mark(fn):
        for e in exc_types:
            COVERED[e] = fn.__name__
        return fn
    return mark


@pytest.fixture(scope="module")
def g200():
    return mesh_like(200, seed=0)


class TestInputErrors:
    @covers(GraphError)
    def test_graph_error_on_bad_structure(self):
        with pytest.raises(GraphError):
            Graph([0, 2], [1, 1])  # self-loop on a 1-vertex graph

    @covers(GraphFormatError)
    def test_graph_format_error_on_bad_file(self, tmp_path):
        from repro.graph import read_metis_graph

        p = tmp_path / "bad.graph"
        p.write_text("this is not\na metis header\n")
        with pytest.raises(GraphFormatError):
            read_metis_graph(p)

    @covers(WeightError)
    def test_weight_error_on_nan(self, g200):
        vw = np.ones((200, 2))
        vw[3, 1] = np.nan
        with pytest.raises(WeightError, match="finite"):
            g200.with_vwgt(vw)

    def test_weight_error_on_ragged(self, g200):
        with pytest.raises(WeightError):
            g200.with_vwgt([[1, 2], [1], [1, 2]] + [[1, 2]] * 197)

    def test_weight_error_on_negative(self, g200):
        vw = np.ones((200, 1), dtype=np.int64)
        vw[0] = -5
        with pytest.raises(WeightError, match="non-negative"):
            g200.with_vwgt(vw)

    @covers(PartitionError)
    def test_partition_error_on_bad_nparts(self, g200):
        with pytest.raises(PartitionError):
            part_graph(g200, 0)
        with pytest.raises(PartitionError):
            part_graph(g200, 10_000)
        with pytest.raises(PartitionError):
            part_graph(g200, 2.5)

    def test_partition_error_on_bad_method(self, g200):
        with pytest.raises(PartitionError, match="unknown method"):
            part_graph(g200, 2, method="quantum")

    @covers(BalanceError)
    def test_balance_error_on_bad_ubvec(self, g200):
        with pytest.raises(BalanceError):
            part_graph(g200, 2, ubvec=0.9)       # <= 1 is unsatisfiable
        with pytest.raises(BalanceError):
            part_graph(g200, 2, ubvec=float("nan"))
        with pytest.raises(BalanceError):
            part_graph(g200, 2, ubvec=[1.05, 1.05])  # wrong length

    def test_balance_error_on_bad_target_fracs(self, g200):
        with pytest.raises(BalanceError):
            part_graph(g200, 2, target_fracs=[0.5, -0.5])
        with pytest.raises(BalanceError):
            part_graph(g200, 2, target_fracs=[0.5, float("inf")])

    @covers(OptionsError)
    def test_options_error_on_unknown_kwarg(self, g200):
        with pytest.raises(OptionsError, match="ubvec"):
            part_graph(g200, 2, ubvek=1.05)   # typo -> suggestion
        with pytest.raises(OptionsError):
            from repro.partition import PartitionOptions

            PartitionOptions().with_(not_a_field=1)

    @covers(ConvergenceError)
    def test_convergence_error_is_catchable(self):
        # Reserved for iterative solvers (no current algorithm gives up);
        # pin its contract: constructible and caught as ReproError.
        with pytest.raises(ReproError):
            raise ConvergenceError("did not converge in 100 iterations")


class TestCommErrors:
    @covers(MessageDropError, TransientCommError, CommError)
    def test_message_drop(self):
        c = FaultyCluster(2, FaultSpec(drop=1.0, max_faults=1))
        with pytest.raises(MessageDropError):
            c.barrier()

    @covers(RankUnavailableError)
    def test_rank_unavailable(self):
        c = FaultyCluster(2, FaultSpec(crash=1.0, max_faults=1))
        with pytest.raises(RankUnavailableError):
            c.barrier()

    @covers(RankCrashedError, PermanentCommError)
    def test_rank_crashed_carries_ranks(self):
        c = FaultyCluster(4, FaultSpec(crash_permanent=1.0, max_faults=1))
        with pytest.raises(RankCrashedError) as ei:
            c.barrier()
        assert len(ei.value.ranks) == 1
        assert 0 <= ei.value.ranks[0] < 4

    def test_comm_error_umbrella(self):
        # The documented catch-all for "the simulated network misbehaved".
        c = FaultyCluster(2, FaultSpec(drop=1.0, max_faults=1))
        with pytest.raises(CommError):
            c.barrier()


class TestFaultErrors:
    @covers(FaultSpecError, FaultError)
    def test_fault_spec_error(self):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse("warp_core_breach=0.5")

    @covers(RetryExhaustedError)
    def test_retry_exhausted(self):
        def always_fails():
            raise MessageDropError("gone")

        with pytest.raises(RetryExhaustedError):
            run_with_retries(always_fails, SimCluster(2),
                             RecoveryPolicy(max_retries=1))

    @covers(PhaseTimeoutError)
    def test_phase_timeout(self):
        cluster = SimCluster(2)
        cluster.stats.compute_time = 1.0
        with pytest.raises(PhaseTimeoutError):
            run_with_retries(lambda: None, cluster,
                             RecoveryPolicy(phase_timeout=0.5), deadline=0.5)

    @covers(DegradedResult)
    def test_degraded_result_in_strict_mode(self):
        g = grid_2d(12, 10)
        with pytest.raises(DegradedResult) as ei:
            parallel_part_graph(
                g, 4, 3,
                faults=FaultSpec(crash_permanent=0.5, seed=0), strict=True)
        assert ei.value.reason
        assert isinstance(ei.value.__cause__, ReproError)


class TestServeErrors:
    @covers(ServeTimeoutError, ServeError)
    def test_serve_timeout_on_expired_deadline(self, g200):
        from repro.serve import PartitionService, ServiceConfig

        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            fut = svc.submit(g200, 4, seed=0)
            slow = mesh_like(3000, seed=1)
            with pytest.raises(ServeTimeoutError):
                svc.submit(slow, 8, seed=0).result(timeout=1e-4)
            fut.result()  # the first request is unaffected

    @covers(ServiceClosedError)
    def test_service_closed_rejects_submits(self, g200):
        from repro.serve import PartitionService

        svc = PartitionService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(g200, 2, seed=0)

    @covers(ServeOverloadError)
    def test_overload_shed_on_full_queue(self, g200):
        from repro.serve import PartitionService, ServiceConfig

        cfg = ServiceConfig(max_pending=0, warm_start=False)
        with PartitionService(cfg) as svc:
            with pytest.raises(ServeOverloadError) as ei:
                svc.submit(g200, 4, seed=0)
        assert ei.value.klass == "interactive"
        assert ei.value.queue_depth == 0

    @covers(ImproverRejectedError)
    def test_improver_rejects_unretained_graph(self, g200):
        from repro.serve import Improver, PartitionService, ServiceConfig

        # retain_graphs=0 (default): the improver has nothing to recompute.
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            res = svc.partition(g200, 4, seed=0)
            assert res.feasible
            entry = svc.cache.hottest(1, min_hits=0)[0]
            imp = Improver(svc)
            with pytest.raises(ImproverRejectedError) as ei:
                imp.improve_digest(entry.key.digest)
        assert ei.value.reason == "no_graph"
        assert ei.value.digest == entry.key.digest
        with pytest.raises(ImproverRejectedError) as ei:
            imp.improve_digest("0" * 64)
        assert ei.value.reason == "missing"

    @covers(ServeBatchError)
    def test_batch_failure_raises_aggregate(self, g200):
        from repro.serve import PartitionService, ServiceConfig

        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            with pytest.raises(ServeBatchError) as ei:
                svc.batch([(g200, 2, {"seed": 0}),
                           (g200, 10**9, {"seed": 0})])  # nparts > nvtxs
        assert sorted(ei.value.errors) == [1]
        assert ei.value.results[0] is not None


class TestObsErrors:
    @covers(ObsError)
    def test_obs_error_on_missing_baseline(self, tmp_path):
        from repro.obs import load_baseline

        with pytest.raises(ObsError, match="baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_obs_error_on_malformed_exposition(self):
        from repro.obs import parse_exposition

        with pytest.raises(ObsError):
            parse_exposition('repro_h_bucket{le="+Inf"} not_a_number\n')


class TestTaxonomyShape:
    def test_hierarchy(self):
        assert issubclass(MessageDropError, TransientCommError)
        assert issubclass(RankUnavailableError, TransientCommError)
        assert issubclass(TransientCommError, CommError)
        assert issubclass(RankCrashedError, PermanentCommError)
        assert issubclass(PermanentCommError, CommError)
        for e in (FaultSpecError, RetryExhaustedError, PhaseTimeoutError):
            assert issubclass(e, FaultError)
        assert issubclass(BalanceError, PartitionError)
        assert issubclass(OptionsError, PartitionError)
        assert issubclass(GraphFormatError, GraphError)
        assert issubclass(ServeTimeoutError, ServeError)
        assert issubclass(ServiceClosedError, ServeError)
        assert issubclass(ServeOverloadError, ServeError)
        assert issubclass(ServeBatchError, ServeError)

    def test_everything_is_repro_error(self):
        for name, obj in vars(errors_mod).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_every_public_exception_is_covered(self):
        """Adding an exception class without a trigger test fails here."""
        public = {
            obj
            for obj in vars(errors_mod).values()
            if inspect.isclass(obj)
            and issubclass(obj, ReproError)
            and obj is not ReproError
        }
        missing = {e.__name__ for e in public} - {e.__name__ for e in COVERED}
        assert not missing, f"exceptions without a trigger test: {sorted(missing)}"
