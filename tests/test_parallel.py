"""Tests for the simulated parallel formulation (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen import is_matching, matching_to_cmap
from repro.errors import ReproError
from repro.graph import mesh_like
from repro.metrics import edge_cut
from repro.parallel import (
    CostModel,
    DistGraph,
    ParallelResult,
    SimCluster,
    parallel_kway_refine,
    parallel_matching,
    parallel_part_graph,
)
from repro.partition import PartitionOptions
from repro.weights import max_imbalance, type1_region_weights


class TestSimCluster:
    def test_alltoall_delivery(self):
        c = SimCluster(3)
        payloads = [
            {1: np.array([1, 2])},
            {2: np.array([3])},
            {0: np.array([4, 5, 6])},
        ]
        got = c.alltoall(payloads)
        assert got[1][0].tolist() == [1, 2]
        assert got[2][1].tolist() == [3]
        assert got[0][2].tolist() == [4, 5, 6]
        assert c.stats.total_messages == 3
        assert c.stats.total_bytes == 6 * 8

    def test_allreduce_ops(self):
        c = SimCluster(4)
        vals = [np.full(2, float(r)) for r in range(4)]
        assert c.allreduce(vals, "sum").tolist() == [6.0, 6.0]
        assert c.allreduce(vals, "max").tolist() == [3.0, 3.0]
        assert c.allreduce(vals, "min").tolist() == [0.0, 0.0]
        with pytest.raises(ReproError):
            c.allreduce(vals, "median")

    def test_compute_charging(self):
        cm = CostModel(alpha=0.0, beta=0.0, compute_rate=100.0)
        c = SimCluster(2, cm)
        c.add_compute(0, 50)
        c.add_compute(1, 200)
        c.barrier()
        # Critical path = max(50, 200) / 100.
        assert c.stats.compute_time == pytest.approx(2.0)

    def test_comm_charging(self):
        cm = CostModel(alpha=1.0, beta=0.5, compute_rate=1e12)
        c = SimCluster(2, cm)
        c.alltoall([{1: np.zeros(4, dtype=np.int64)}, {}])  # 32 bytes
        assert c.stats.comm_time == pytest.approx(1.0 + 0.5 * 32)

    def test_arg_validation(self):
        with pytest.raises(ReproError):
            SimCluster(0)
        c = SimCluster(2)
        with pytest.raises(ReproError):
            c.alltoall([{}])
        with pytest.raises(ReproError):
            c.alltoall([{5: np.zeros(1)}, {}])

    def test_bcast_and_gather(self):
        c = SimCluster(4)
        out = c.bcast(np.arange(3))
        assert out.tolist() == [0, 1, 2]
        got = c.gather([np.array([r]) for r in range(4)])
        assert [g.tolist() for g in got] == [[0], [1], [2], [3]]


class TestDistGraph:
    def test_block_distribution(self, mesh500):
        d = DistGraph(mesh500, 4)
        assert d.vtxdist.tolist() == [0, 125, 250, 375, 500]
        assert d.owner(0) == 0 and d.owner(499) == 3
        assert d.owner(np.array([125, 374])).tolist() == [1, 2]

    def test_uneven_blocks(self, mesh500):
        d = DistGraph(mesh500, 3)
        sizes = np.diff(d.vtxdist)
        assert sizes.sum() == 500
        assert sizes.max() - sizes.min() <= 1

    def test_ghosts_are_foreign_neighbours(self, mesh500):
        d = DistGraph(mesh500, 4)
        ghosts = d.ghost_vertices(1)
        lo, hi = d.local_range(1)
        assert np.all((ghosts < lo) | (ghosts >= hi))
        assert ghosts.size > 0

    def test_edge_counts(self, mesh500):
        d = DistGraph(mesh500, 4)
        assert sum(d.local_edge_count(r) for r in range(4)) == 2 * mesh500.nedges
        assert 0 < d.cut_edges_between_ranks() <= 2 * mesh500.nedges


class TestParallelMatching:
    @pytest.mark.parametrize("nranks", [1, 2, 8])
    def test_valid_matching(self, mesh2000, nranks):
        d = DistGraph(mesh2000, nranks)
        c = SimCluster(nranks)
        match = parallel_matching(d, c, seed=0)
        assert is_matching(mesh2000, match)

    def test_matches_most_vertices(self, mesh2000):
        d = DistGraph(mesh2000, 4)
        c = SimCluster(4)
        match = parallel_matching(d, c, seed=1)
        unmatched = np.count_nonzero(match == np.arange(2000))
        assert unmatched < 0.35 * 2000

    def test_communication_happened(self, mesh2000):
        c = SimCluster(4)
        parallel_matching(DistGraph(mesh2000, 4), c, seed=2)
        assert c.stats.total_bytes > 0
        assert c.stats.supersteps >= 2

    def test_single_rank_no_remote_proposals(self, mesh500):
        c = SimCluster(1)
        match = parallel_matching(DistGraph(mesh500, 1), c, seed=3)
        assert is_matching(mesh500, match)
        assert c.stats.total_bytes == 0

    def test_cmap_composes(self, mesh500):
        c = SimCluster(2)
        match = parallel_matching(DistGraph(mesh500, 2), c, seed=4)
        cmap, ncoarse = matching_to_cmap(match)
        assert ncoarse < 500


class TestParallelRefine:
    def test_improves_and_respects_balance(self, mesh2000):
        rng = np.random.default_rng(0)
        where = rng.integers(0, 8, 2000)
        # Give it a roughly balanced start via counts.
        where = (np.arange(2000) % 8).astype(np.int64)
        rng.shuffle(where)
        cut0 = edge_cut(mesh2000, where)
        d = DistGraph(mesh2000, 4)
        c = SimCluster(4)
        stats = parallel_kway_refine(d, c, where, 8, ubvec=1.05, seed=1)
        assert edge_cut(mesh2000, where) < cut0
        assert stats["feasible"]
        assert max_imbalance(mesh2000.vwgt, where, 8) <= 1.05 + 1e-9

    def test_disallowed_fraction_reported(self, mesh2000):
        where = (np.arange(2000) % 8).astype(np.int64)
        np.random.default_rng(3).shuffle(where)
        d = DistGraph(mesh2000, 8)
        c = SimCluster(8)
        stats = parallel_kway_refine(d, c, where, 8, ubvec=1.02, seed=4)
        assert stats["committed"] >= 0
        assert stats["disallowed"] >= 0
        assert stats["passes"] >= 1


class TestParallelDriver:
    def test_quality_matches_serial_shape(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=0))
        from repro.partition import part_graph

        serial = part_graph(g, 8, seed=1)
        par = parallel_part_graph(g, 8, 4, options=PartitionOptions(seed=1))
        assert par.feasible
        assert par.edgecut <= 1.6 * serial.edgecut
        assert par.part.shape == (2000,)

    def test_stats_populated(self, mesh2000):
        par = parallel_part_graph(mesh2000, 4, 4, options=PartitionOptions(seed=2))
        assert par.stats.total_bytes > 0
        assert par.simulated_time > 0
        assert par.levels >= 1
        assert "p=4" in par.summary()

    def test_single_rank_runs(self, mesh500):
        par = parallel_part_graph(mesh500, 4, 1, options=PartitionOptions(seed=3))
        assert par.feasible

    def test_deterministic(self, mesh500):
        a = parallel_part_graph(mesh500, 4, 2, options=PartitionOptions(seed=7))
        b = parallel_part_graph(mesh500, 4, 2, options=PartitionOptions(seed=7))
        assert np.array_equal(a.part, b.part)
        assert a.simulated_time == b.simulated_time

    def test_invalid_nparts(self, mesh500):
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            parallel_part_graph(mesh500, 0, 2)

    def test_more_constraints_cost_more_simulated_time(self, mesh2000):
        """The m-scaling claim: multi-constraint work grows with m."""
        g1 = mesh2000
        g3 = mesh2000.with_vwgt(type1_region_weights(mesh2000, 3, seed=5))
        t1 = parallel_part_graph(g1, 8, 4, options=PartitionOptions(seed=6)).simulated_time
        t3 = parallel_part_graph(g3, 8, 4, options=PartitionOptions(seed=6)).simulated_time
        assert t3 > 0.8 * t1  # must not be cheaper; typically higher


class TestPhaseTimes:
    def test_phase_times_partition_total(self, mesh2000):
        par = parallel_part_graph(mesh2000, 8, 4, options=PartitionOptions(seed=20))
        pt = par.phase_times
        assert set(pt) == {"coarsen", "initpart", "refine"}
        assert all(v >= 0 for v in pt.values())
        assert sum(pt.values()) == pytest.approx(par.simulated_time, rel=1e-9)

    def test_coarsening_dominates_on_single_rank(self, mesh2000):
        """With one rank there is no arbitration traffic; coarsening compute
        still has to touch every edge per level, so it must be a visible
        fraction of the run."""
        par = parallel_part_graph(mesh2000, 4, 1, options=PartitionOptions(seed=21))
        assert par.phase_times["coarsen"] > 0


class TestParallelContract:
    @pytest.mark.parametrize("nranks", [1, 3, 8])
    def test_equivalent_to_serial(self, mesh2000, nranks):
        from repro.coarsen import heavy_edge_matching, matching_to_cmap
        from repro.graph import contract
        from repro.parallel import parallel_contract

        match = heavy_edge_matching(mesh2000, seed=0)
        cmap, nc = matching_to_cmap(match)
        serial = contract(mesh2000, cmap, nc)
        c = SimCluster(nranks)
        par = parallel_contract(DistGraph(mesh2000, nranks), c, cmap, nc)
        assert par == serial

    def test_multiconstraint_weights_assembled(self, mesh500):
        from repro.coarsen import heavy_edge_matching, matching_to_cmap
        from repro.graph import contract
        from repro.parallel import parallel_contract

        g = mesh500.with_vwgt(type1_region_weights(mesh500, 3, seed=1))
        match = heavy_edge_matching(g, seed=2)
        cmap, nc = matching_to_cmap(match)
        c = SimCluster(4)
        par = parallel_contract(DistGraph(g, 4), c, cmap, nc)
        assert np.array_equal(par.total_vwgt(), g.total_vwgt())
        assert par == contract(g, cmap, nc)

    def test_bytes_scale_with_cross_rank_edges(self, mesh2000):
        from repro.coarsen import heavy_edge_matching, matching_to_cmap
        from repro.parallel import parallel_contract

        match = heavy_edge_matching(mesh2000, seed=3)
        cmap, nc = matching_to_cmap(match)
        c2 = SimCluster(2)
        parallel_contract(DistGraph(mesh2000, 2), c2, cmap, nc)
        c8 = SimCluster(8)
        parallel_contract(DistGraph(mesh2000, 8), c8, cmap, nc)
        # More ranks, more boundary: strictly more protocol traffic.
        assert c8.stats.total_bytes > c2.stats.total_bytes


class TestReservationProperty:
    def test_residual_excess_is_small(self, mesh2000):
        """The reservation scheme's core promise: after one pass the total
        excess left to later passes is a small fraction of the slack, not a
        runaway overshoot."""
        from repro.refine.kwayref import KWayState

        rng = np.random.default_rng(30)
        where = (np.arange(2000) % 8).astype(np.int64)
        rng.shuffle(where)
        d = DistGraph(mesh2000, 8)
        c = SimCluster(8)
        parallel_kway_refine(d, c, where, 8, ubvec=1.05, npasses=1, seed=31)
        state = KWayState(mesh2000, where, 8, 1.05)
        total_slack = float(np.maximum(state.caps - 1.0 / 8, 0).sum())
        assert state.balance_obj() <= 0.5 * max(total_slack, 1e-9)
