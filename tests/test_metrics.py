"""Unit tests for quality metrics and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import from_edges, grid_2d
from repro.metrics import (
    PartitionReport,
    boundary_vertices,
    comm_volume,
    edge_cut,
    format_table,
    interface_sizes,
    subdomain_matrix,
)


class TestCommVolume:
    def test_zero_when_uncut(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert comm_volume(g, [0, 0, 1, 1]) == 0

    def test_counts_distinct_foreign_parts(self):
        # Star centre adjacent to 3 leaves in 3 different parts:
        # centre contributes 3, each leaf contributes 1.
        g = from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert comm_volume(g, [0, 1, 2, 3]) == 6

    def test_multiple_edges_same_part_counted_once(self):
        g = from_edges(3, [(0, 1), (0, 2)])
        # 1 and 2 both in part 1: vertex 0 contributes 1, not 2.
        assert comm_volume(g, [0, 1, 1]) == 3

    def test_volume_le_cut_for_unit_weights(self, mesh500):
        rng = np.random.default_rng(0)
        part = rng.integers(0, 4, 500)
        assert comm_volume(mesh500, part) <= 2 * edge_cut(mesh500, part)


class TestSubdomainMatrix:
    def test_stripes(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)  # rows 0-1 part 0, rows 2-3 part 1
        mat = subdomain_matrix(g, part, 2)
        assert mat[0, 1] == mat[1, 0] == 4  # the four vertical cut edges
        assert mat[0, 0] == mat[1, 1] == 10  # 6 horizontal + 4 vertical each

    def test_total_identity(self, mesh500):
        """trace + upper-triangle = total edge weight."""
        rng = np.random.default_rng(1)
        part = rng.integers(0, 5, 500)
        mat = subdomain_matrix(mesh500, part, 5)
        assert np.array_equal(mat, mat.T)
        upper = int(np.triu(mat, k=1).sum())
        assert int(np.trace(mat)) + upper == mesh500.total_adjwgt()
        assert upper == edge_cut(mesh500, part)

    def test_interface_sizes(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 1, 2, 3], 4)
        deg = interface_sizes(g, part, 4)
        assert deg.tolist() == [1, 2, 2, 1]


class TestBoundary:
    def test_boundary_stripes(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)
        assert sorted(boundary_vertices(g, part).tolist()) == list(range(4, 12))

    def test_shape_mismatch(self, mesh500):
        with pytest.raises(PartitionError):
            boundary_vertices(mesh500, np.zeros(3))


class TestReport:
    def test_full_report(self, mesh500):
        rng = np.random.default_rng(2)
        part = rng.integers(0, 4, 500)
        rep = PartitionReport.from_partition(mesh500, part, 4)
        assert rep.edgecut == edge_cut(mesh500, part)
        assert rep.nparts == 4 and rep.ncon == 1
        assert rep.part_weights.shape == (4, 1)
        assert rep.max_imbalance >= 1.0
        assert "cut=" in str(rep)

    def test_report_on_perfect_partition(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        rep = PartitionReport.from_partition(g, np.array([0, 0, 1, 1]), 2)
        assert rep.edgecut == 0
        assert rep.comm_volume == 0
        assert rep.nboundary == 0
        assert rep.max_subdomain_degree == 0


class TestFormatTable:
    def test_alignment_and_floats(self):
        txt = format_table(["name", "cut"], [["g1", 1.23456], ["graph2", 7]],
                           title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "1.235" in txt
        assert "graph2" in txt

    def test_empty_rows(self):
        txt = format_table(["a"], [])
        assert "a" in txt
