"""The serving layer's contract: cache consistency, dedup, eviction,
warm-start fallback, deadlines, and concurrent determinism.

The headline invariant under test: **a cache hit is bit-identical to the
cold compute it stands in for** -- same part vector, edgecut, imbalance and
feasible flag -- across randomized requests, thread interleavings, and the
warm-start path's fallbacks.  See ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.serve.service as service_mod
import repro.serve.warm as warm_mod
from repro._rng import canonical_seed
from repro.adaptive.repart import RepartitionResult
from repro.errors import (
    OptionsError,
    ServeBatchError,
    ServeTimeoutError,
    ServiceClosedError,
)
from repro.graph import mesh_like
from repro.partition import PartitionOptions, part_graph
from repro.serve import (
    PartitionService,
    RequestKey,
    ResultCache,
    ServiceConfig,
    request_key,
)
from repro.trace import Tracer
from repro.weights import type1_region_weights


def make_graph(n=300, ncon=2, seed=0):
    g = mesh_like(n, seed=seed)
    if ncon > 1:
        g = g.with_vwgt(type1_region_weights(g, ncon, seed=seed + 1))
    return g


def same_result(a, b) -> bool:
    return (
        np.array_equal(a.part, b.part)
        and a.edgecut == b.edgecut
        and np.array_equal(a.imbalance, b.imbalance)
        and a.feasible == b.feasible
        and a.nparts == b.nparts
        and a.method == b.method
    )


# --------------------------------------------------------------------- #
# Request keys
# --------------------------------------------------------------------- #


class TestRequestKey:
    def test_same_request_same_key(self):
        g = make_graph()
        k1, _ = request_key(g, 4, options=PartitionOptions(seed=3))
        k2, _ = request_key(g, 4, options=PartitionOptions(seed=3))
        assert k1.digest == k2.digest

    def test_content_addressed_not_identity(self):
        # A structurally identical copy of the graph must hit.
        g = make_graph()
        k1, _ = request_key(g, 4, options=PartitionOptions(seed=3))
        k2, _ = request_key(g.copy(), 4, options=PartitionOptions(seed=3))
        assert k1.digest == k2.digest

    @pytest.mark.parametrize("change", [
        dict(nparts=5),
        dict(method="recursive"),
        dict(options=PartitionOptions(seed=4)),
        dict(options=PartitionOptions(seed=3, ubvec=1.10)),
        dict(options=PartitionOptions(seed=3, matching="rm")),
        dict(options=PartitionOptions(seed=3, refine_passes=2)),
        dict(target_fracs=[0.4, 0.2, 0.2, 0.2]),
    ])
    def test_semantic_change_changes_key(self, change):
        g = make_graph()
        base = dict(nparts=4, options=PartitionOptions(seed=3))
        k1, _ = request_key(g, base["nparts"], options=base["options"])
        merged = {**base, **change}
        k2, _ = request_key(g, merged["nparts"], options=merged["options"],
                            method=merged.get("method", "kway"),
                            target_fracs=merged.get("target_fracs"))
        assert k1.digest != k2.digest

    def test_weights_change_key_but_not_topology(self):
        g = make_graph(ncon=2)
        g2 = g.with_vwgt(g.vwgt + 1)
        k1, _ = request_key(g, 4, options=PartitionOptions(seed=0))
        k2, _ = request_key(g2, 4, options=PartitionOptions(seed=0))
        assert k1.digest != k2.digest
        assert k1.topo_digest == k2.topo_digest

    def test_collect_stats_is_not_semantic(self):
        g = make_graph()
        k1, _ = request_key(g, 4, options=PartitionOptions(seed=3))
        k2, _ = request_key(
            g, 4, options=PartitionOptions(seed=3, collect_stats=True))
        assert k1.digest == k2.digest

    def test_none_seed_is_uncacheable(self):
        g = make_graph()
        k, _ = request_key(g, 4, options=PartitionOptions(seed=None))
        assert not k.cacheable

    def test_generator_seed_is_pinned(self):
        g = make_graph()
        rng = np.random.default_rng(7)
        k, opts = request_key(g, 4, options=PartitionOptions(seed=rng))
        assert k.cacheable and isinstance(opts.seed, int)
        # Pinning consumed from the generator deterministically.
        assert opts.seed == canonical_seed(np.random.default_rng(7))


# --------------------------------------------------------------------- #
# The headline invariant: hit == cold compute, bit for bit
# --------------------------------------------------------------------- #


class TestCacheConsistencyProperty:
    def test_hit_is_bit_identical_to_cold_compute_50_draws(self):
        draw = np.random.default_rng(20260807)
        svc = PartitionService(ServiceConfig(warm_start=False))
        with svc:
            for i in range(50):
                n = int(draw.integers(60, 260))
                ncon = int(draw.integers(1, 4))
                nparts = int(draw.integers(2, 9))
                seed = int(draw.integers(0, 2**31))
                method = ["kway", "recursive"][int(draw.integers(0, 2))]
                matching = ["hem", "bem", "rm", "fhem"][int(draw.integers(0, 4))]
                ubvec = float(draw.uniform(1.02, 1.4))
                g = make_graph(n, ncon, seed=int(draw.integers(0, 10_000)))
                kwargs = dict(method=method, seed=seed, ubvec=ubvec,
                              matching=matching)

                served = svc.partition(g, nparts, **kwargs)
                hit = svc.partition(g, nparts, **kwargs)
                cold = part_graph(g, nparts, **kwargs)
                assert same_result(served, cold), f"draw {i}: served != cold"
                assert same_result(hit, cold), f"draw {i}: hit != cold"
        stats = svc.stats()
        assert stats["serve.cache.hits"] == 50
        assert stats["serve.cold_computes"] == 50

    def test_hit_result_arrays_are_frozen(self):
        g = make_graph()
        with PartitionService() as svc:
            svc.partition(g, 4, seed=0)
            hit = svc.partition(g, 4, seed=0)
            with pytest.raises(ValueError):
                hit.part[0] = 99


# --------------------------------------------------------------------- #
# Eviction
# --------------------------------------------------------------------- #


def _key(digest: str, nparts=4) -> RequestKey:
    return RequestKey(digest=digest, topo_digest="t", nparts=nparts,
                      method="kway", ncon=1, seed=0)


def _result(g, nparts=4, seed=0):
    return part_graph(g, nparts, seed=seed)


class TestEviction:
    def test_lru_entry_budget(self):
        g = make_graph(100, 1)
        res = _result(g)
        cache = ResultCache(max_entries=2, max_bytes=1 << 30)
        for d in ("a", "b", "c"):
            cache.put(_key(d), res)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(_key("a")) is None          # oldest evicted
        assert cache.get(_key("c")) is not None

    def test_lru_order_refreshed_by_get(self):
        g = make_graph(100, 1)
        res = _result(g)
        cache = ResultCache(max_entries=2, max_bytes=1 << 30)
        cache.put(_key("a"), res)
        cache.put(_key("b"), res)
        assert cache.get(_key("a")) is not None      # refresh "a"
        cache.put(_key("c"), res)                    # evicts "b"
        assert cache.get(_key("b")) is None
        assert cache.get(_key("a")) is not None

    def test_byte_budget_evicts(self):
        g = make_graph(100, 1)
        res = _result(g)
        one = res.part.nbytes + res.imbalance.nbytes
        cache = ResultCache(max_entries=100, max_bytes=int(2.5 * one))
        for d in ("a", "b", "c"):
            assert cache.put(_key(d), res)
        assert len(cache) == 2
        assert cache.nbytes <= int(2.5 * one)

    def test_oversized_result_not_admitted(self):
        g = make_graph(100, 1)
        res = _result(g)
        cache = ResultCache(max_entries=10, max_bytes=8)
        assert not cache.put(_key("a"), res)
        assert len(cache) == 0

    def test_zero_entries_disables_caching(self):
        g = make_graph(100, 1)
        cache = ResultCache(max_entries=0)
        assert not cache.put(_key("a"), _result(g))
        with PartitionService(ServiceConfig(cache_entries=0)) as svc:
            a = svc.partition(g, 4, seed=0)
            b = svc.partition(g, 4, seed=0)
            assert same_result(a, b)
            assert svc.stats()["serve.cold_computes"] == 2


# --------------------------------------------------------------------- #
# Dedup / batching
# --------------------------------------------------------------------- #


class TestDedup:
    def test_identical_inflight_requests_coalesce(self, monkeypatch):
        g = make_graph(150, 1)
        calls = []
        real = service_mod.part_graph

        def slow_part_graph(*args, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.15)  # hold the compute so the repeats coalesce
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow_part_graph)
        with PartitionService(ServiceConfig(max_workers=4,
                                            warm_start=False)) as svc:
            futs = [svc.submit(g, 4, seed=1) for _ in range(8)]
            results = [f.result() for f in futs]
        assert len(calls) == 1
        assert all(same_result(r, results[0]) for r in results)
        stats = svc.stats()
        assert stats["serve.cold_computes"] == 1
        assert stats["serve.dedup.coalesced"] == 7

    def test_batch_mixed_requests(self):
        g = make_graph(150, 2)
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            out = svc.batch([
                (g, 2, {"seed": 0}),
                (g, 3, {"seed": 0}),
                (g, 2, {"seed": 0}),          # duplicate of the first
            ])
        assert len(out) == 3
        assert same_result(out[0], out[2])
        assert svc.stats()["serve.cold_computes"] == 2

    def test_batch_gathers_all_outcomes_on_failure(self, monkeypatch):
        """Regression: ``batch`` used to raise on the first failed future
        and silently abandon the rest.  It now gathers everything and
        raises an aggregate carrying per-request outcomes."""
        g = make_graph(150, 1)
        real = service_mod.part_graph

        def flaky(graph, nparts, **kwargs):
            if nparts == 3:
                raise RuntimeError("injected compute failure")
            return real(graph, nparts, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", flaky)
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            with pytest.raises(ServeBatchError) as excinfo:
                svc.batch([
                    (g, 2, {"seed": 0}),
                    (g, 3, {"seed": 0}),          # fails in compute
                    (g, 4, {"seed": 0}),
                ])
        err = excinfo.value
        assert set(err.errors) == {1}
        assert isinstance(err.errors[1], RuntimeError)
        # the siblings were not abandoned: their results are delivered
        assert err.results[1] is None
        assert same_result(err.results[0], part_graph(g, 2, seed=0))
        assert same_result(err.results[2], part_graph(g, 4, seed=0))

    def test_batch_all_success_unchanged(self):
        g = make_graph(120, 1)
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            out = svc.batch([(g, 2, {"seed": 1}), (g, 4, {"seed": 1})])
        assert [r.nparts for r in out] == [2, 4]

    def test_none_seed_requests_are_independent(self):
        g = make_graph(120, 1)
        with PartitionService() as svc:
            svc.partition(g, 4)
            svc.partition(g, 4)
            stats = svc.stats()
        # seed=None => nondeterministic: no caching, no dedup.
        assert stats["serve.cold_computes"] == 2
        assert stats["serve.cache.hits"] == 0


# --------------------------------------------------------------------- #
# Warm start
# --------------------------------------------------------------------- #


class TestWarmStart:
    def test_perturbed_weights_warm_starts_and_stays_feasible(self):
        g = make_graph(800, 2, seed=5)
        tracer = Tracer()
        with PartitionService(tracer=tracer) as svc:
            svc.partition(g, 6, seed=3)
            vw = g.vwgt.copy()
            vw[:40] += 1
            warm = svc.partition(g.with_vwgt(vw), 6, seed=3)
        assert warm.feasible
        stats = svc.stats()
        assert stats["serve.warm_start.attempts"] == 1
        assert stats["serve.warm_start.accepted"] == 1
        # the serve.warm_start span was recorded under a serve.request root
        spans = [sp for root in tracer.roots for _, sp in root.walk()
                 if sp.name == "serve.warm_start"]
        assert len(spans) == 1 and spans[0].attrs["accepted"]

    def test_infeasible_warm_result_falls_back_to_cold(self, monkeypatch):
        g = make_graph(400, 2, seed=6)

        def infeasible_refine(graph, old_part, nparts, **kwargs):
            return RepartitionResult(
                part=np.asarray(old_part) % nparts,
                nparts=nparts,
                edgecut=0,
                imbalance=np.full(graph.ncon, 99.0),
                feasible=False,
                migration={"moved_vertices": 0, "moved_fraction": 0.0,
                           "moved_weight": np.zeros(graph.ncon),
                           "volume": 0},
                strategy="refine",
            )

        monkeypatch.setattr(warm_mod, "refine_partition", infeasible_refine)
        with PartitionService() as svc:
            svc.partition(g, 4, seed=3)
            vw = g.vwgt.copy()
            vw[:20] += 1
            g2 = g.with_vwgt(vw)
            res = svc.partition(g2, 4, seed=3)
        cold = part_graph(g2, 4, seed=3)
        assert same_result(res, cold)          # fell back to the cold path
        stats = svc.stats()
        assert stats["serve.warm_start.rejected"] == 1
        assert stats["serve.cold_computes"] == 2

    def test_warm_results_not_cached_by_default(self):
        g = make_graph(500, 2, seed=7)
        with PartitionService() as svc:
            svc.partition(g, 4, seed=3)
            g2 = g.with_vwgt(g.vwgt + 1)
            first = svc.partition(g2, 4, seed=3)   # warm compute
            again = svc.partition(g2, 4, seed=3)   # NOT a hit: warm uncached
            stats = svc.stats()
        assert stats["serve.cache.hits"] == 0
        assert stats["serve.warm_start.attempts"] >= 2
        assert same_result(first, again)  # warm path is deterministic too

    def test_warm_across_nparts_folds_part_ids(self):
        g = make_graph(600, 1, seed=8)
        with PartitionService() as svc:
            svc.partition(g, 8, seed=3)
            res = svc.partition(g, 6, seed=3)      # same topology, new k
        assert res.nparts == 6
        assert res.part.max() < 6
        assert svc.stats()["serve.warm_start.attempts"] == 1

    def test_warm_up_nparts_repairs_empty_parts(self):
        # Folding a 2-part seed into a 4-part request leaves parts 2..3
        # empty (old_part % 4 == old_part); the refiner cannot populate an
        # empty part, so warm_start must repair the seed first.  The warm
        # result must be feasible with every part nonempty, and the repair
        # must be recorded on the serve.warm_start span.
        g = make_graph(800, 1, seed=9)
        tracer = Tracer()
        with PartitionService(tracer=tracer) as svc:
            svc.partition(g, 2, seed=3)
            res = svc.partition(g, 4, seed=3)
        stats = svc.stats()
        assert stats["serve.warm_start.attempts"] == 1
        assert stats["serve.warm_start.accepted"] == 1
        assert res.nparts == 4 and res.feasible
        sizes = np.bincount(res.part, minlength=4)
        assert (sizes > 0).all(), f"empty parts in warm result: {sizes}"
        spans = [sp for root in tracer.roots for _, sp in root.walk()
                 if sp.name == "serve.warm_start"]
        assert len(spans) == 1
        assert spans[0].attrs["repaired_parts"] == 2
        assert spans[0].attrs["accepted"]


# --------------------------------------------------------------------- #
# Background improver
# --------------------------------------------------------------------- #


class TestImprover:
    def test_sweep_rekeys_and_preserves_standard_entry(self):
        from repro.serve import Improver

        g = make_graph(500, 1, seed=6)
        cfg = ServiceConfig(warm_start=True, retain_graphs=4)
        with PartitionService(cfg) as svc:
            std = svc.partition(g, 8, seed=4)
            svc.partition(g, 8, seed=4)            # exact-key hit -> "hot"
            std_digest = svc.cache.hottest(1)[0].key.digest

            imp = Improver(svc)
            (out,) = imp.run_once()
            assert out.status in ("improved", "no_gain")
            assert out.digest == std_digest
            assert out.improved_cut <= out.standard_cut == std.edgecut

            # The standard entry is untouched: an exact-key hit is still
            # bit-identical to the original cold compute.
            again = svc.partition(g, 8, seed=4)
            assert same_result(again, std)

            # The improved result lives under the NEW high-effort key and
            # matches a direct high-effort request bit for bit.
            high = svc.partition(g, 8, seed=4, effort="high")
            assert int(high.edgecut) == out.improved_cut
            direct = part_graph(g, 8, seed=4, effort="high")
            assert np.array_equal(high.part, direct.part)

            # A second sweep finds the high key already cached.
            (again_out,) = imp.run_once()
            assert again_out.status == "cached"
            stats = svc.stats()
            assert stats["serve.improver.sweeps"] == 2

    def test_candidates_skip_high_effort_entries(self):
        from repro.serve import Improver

        g = make_graph(300, 1, seed=2)
        cfg = ServiceConfig(warm_start=False, retain_graphs=4)
        with PartitionService(cfg) as svc:
            svc.partition(g, 4, seed=1, effort="high")
            svc.partition(g, 4, seed=1, effort="high")
            imp = Improver(svc)
            assert imp.candidates() == []
            assert imp.run_once() == []


class TestImproverWatch:
    def test_watch_sweeps_when_idle(self):
        from repro.serve import Improver

        g = make_graph(300, 1, seed=6)
        cfg = ServiceConfig(warm_start=False, retain_graphs=4)
        with PartitionService(cfg) as svc:
            svc.partition(g, 4, seed=4)
            svc.partition(g, 4, seed=4)  # hot
            with Improver(svc) as imp:
                imp.watch(idle_threshold=0, interval=0.01)
                with pytest.raises(RuntimeError, match="already running"):
                    imp.watch()
                deadline = time.time() + 30
                while time.time() < deadline:
                    st = svc.stats()
                    if (st.get("serve.improver.improved", 0)
                            + st.get("serve.improver.no_gain", 0)) >= 1:
                        break
                    time.sleep(0.02)
            st = svc.stats()
            assert st.get("serve.improver.sweeps", 0) >= 1
            assert (st.get("serve.improver.improved", 0)
                    + st.get("serve.improver.no_gain", 0)) >= 1
            imp.close()  # idempotent

    def test_watch_defers_while_queue_is_deep(self):
        from repro.serve import Improver

        cfg = ServiceConfig(warm_start=False, retain_graphs=4)
        with PartitionService(cfg) as svc:
            # Fake a deep foreground queue: the watcher must only defer.
            with svc._lock:
                svc.admission.pending = 3
            try:
                with Improver(svc) as imp:
                    imp.watch(idle_threshold=0, interval=0.005)
                    deadline = time.time() + 10
                    while time.time() < deadline:
                        if svc.stats().get(
                                "serve.improver.deferred", 0) >= 3:
                            break
                        time.sleep(0.01)
                st = svc.stats()
                assert st.get("serve.improver.deferred", 0) >= 3
                assert st.get("serve.improver.sweeps", 0) == 0
            finally:
                with svc._lock:
                    svc.admission.pending = 0

    def test_watch_stops_when_service_closes(self):
        from repro.serve import Improver

        svc = PartitionService(ServiceConfig(warm_start=False,
                                             retain_graphs=4))
        imp = Improver(svc)
        imp.watch(interval=0.01)
        thread = imp._watch_thread
        svc.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        imp.close()


# --------------------------------------------------------------------- #
# Deadlines / errors
# --------------------------------------------------------------------- #


class TestDeadlinesAndErrors:
    def test_result_timeout_raises_serve_timeout(self, monkeypatch):
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.5)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            fut = svc.submit(g, 4, seed=0)
            with pytest.raises(ServeTimeoutError):
                fut.result(timeout=0.05)
            # the compute itself still completes for other waiters
            assert fut.result(timeout=5.0).nparts == 4

    def test_expired_request_is_skipped(self, monkeypatch):
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.3)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        # one worker: the second distinct request queues behind the first
        # and its deadline expires before a worker picks it up.
        cfg = ServiceConfig(max_workers=1, warm_start=False)
        with PartitionService(cfg) as svc:
            f1 = svc.submit(g, 4, seed=0)
            f2 = svc.submit(g, 5, seed=0, timeout=0.05)
            with pytest.raises(ServeTimeoutError):
                f2.result(timeout=5.0)
            assert f1.result().nparts == 4
        assert svc.stats()["serve.timeouts"] == 1

    def test_live_follower_keeps_coalesced_compute_alive(self, monkeypatch):
        """Regression: a follower with a longer (or no) timeout used to
        inherit the leader's deadline -- when the leader expired before
        compute started, the shared future carried ServeTimeoutError to
        everyone.  Per-follower deadlines keep the compute running for
        live waiters."""
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.3)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        cfg = ServiceConfig(max_workers=1, warm_start=False)
        with PartitionService(cfg) as svc:
            filler = svc.submit(g, 4, seed=0)         # occupies the worker
            leader = svc.submit(g, 5, seed=0, timeout=0.05)
            follower = svc.submit(g, 5, seed=0)       # no deadline
            assert follower.disposition == "coalesced"
            # Only the genuinely-expired leader times out (checked while
            # the compute is still queued behind the filler)...
            with pytest.raises(ServeTimeoutError):
                leader.result()
            # ...while the follower gets a real result even though the
            # leader's deadline expired before compute started.
            res = follower.result(timeout=10.0)
            assert same_result(res, part_graph(g, 5, seed=0))
            assert filler.result().nparts == 4
        # The compute ran: it was never skipped as expired.
        assert svc.stats()["serve.timeouts"] == 0

    def test_all_waiters_expired_still_skips(self, monkeypatch):
        """When the leader *and* every follower are past their deadlines
        the queued compute is still skipped entirely."""
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.3)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        cfg = ServiceConfig(max_workers=1, warm_start=False)
        with PartitionService(cfg) as svc:
            svc.submit(g, 4, seed=0)
            leader = svc.submit(g, 5, seed=0, timeout=0.05)
            follower = svc.submit(g, 5, seed=0, timeout=0.05)
            for fut in (leader, follower):
                with pytest.raises(ServeTimeoutError):
                    fut.result(timeout=10.0)
        assert svc.stats()["serve.timeouts"] == 1

    def test_unknown_option_raises_options_error(self):
        g = make_graph(100, 1)
        with PartitionService() as svc:
            with pytest.raises(OptionsError, match="ubvec"):
                svc.submit(g, 4, ubvek=1.02)

    def test_compute_error_propagates_to_waiter(self):
        g = make_graph(100, 1)
        with PartitionService() as svc:
            with pytest.raises(Exception):
                # nparts > nvtxs is caught eagerly at submit
                svc.submit(g, 1000, seed=0)

    def test_closed_service_rejects_submits(self):
        g = make_graph(100, 1)
        svc = PartitionService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(g, 4, seed=0)


# --------------------------------------------------------------------- #
# Concurrency: determinism + the smoke the CI job runs
# --------------------------------------------------------------------- #


class TestConcurrency:
    def test_concurrent_identical_seeds_are_bit_identical(self):
        """Satellite determinism pin: same seed => same bits, even with
        dedup and caching OFF so every request really computes."""
        g = make_graph(400, 2, seed=9)
        reference = part_graph(g, 6, seed=1234)
        cfg = ServiceConfig(max_workers=8, cache_entries=0, dedup=False,
                            warm_start=False)
        with PartitionService(cfg) as svc:
            futs = [svc.submit(g, 6, seed=1234) for _ in range(8)]
            results = [f.result() for f in futs]
        assert svc.stats()["serve.cold_computes"] == 8
        for r in results:
            assert same_result(r, reference)

    def test_part_graph_itself_is_reentrant_with_int_seeds(self):
        """No hidden shared RNG state in the core drivers."""
        g = make_graph(400, 2, seed=10)
        reference = part_graph(g, 5, seed=77)
        with ThreadPoolExecutor(max_workers=6) as pool:
            futs = [pool.submit(part_graph, g, 5, seed=77) for _ in range(6)]
            for f in futs:
                assert same_result(f.result(), reference)

    def test_serve_smoke_one_cold_compute_per_distinct_key(self):
        """The `make serve-smoke` contract: N threads x M duplicate
        requests over K distinct keys -> exactly K cold computes."""
        graphs = [make_graph(150, 2, seed=s) for s in (1, 2, 3)]
        reqs = [(g, k, {"seed": 5}) for g in graphs for k in (2, 4)]  # K=6
        cfg = ServiceConfig(max_workers=8, warm_start=False)
        with PartitionService(cfg) as svc:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futs = [
                    pool.submit(svc.partition, g, k, seed=kw["seed"])
                    for _ in range(5)                 # M=5 duplicates
                    for (g, k, kw) in reqs
                ]
                results = [f.result() for f in futs]
        stats = svc.stats()
        assert stats["serve.cold_computes"] == len(reqs)
        assert stats["serve.requests"] == 5 * len(reqs)
        # every duplicate saw the same bits as its first compute
        by_req = {}
        for (g, k, kw), r in zip(reqs * 5, results):
            ref = by_req.setdefault((id(g), k), r)
            assert same_result(r, ref)
