"""Tests for the repro.trace subsystem: spans, metrics, sinks, reports,
and its integration with the partitioning drivers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    coarsening_profile_from_trace,
    profile_text,
    refinement_profile,
    refinement_profile_text,
)
from repro.graph import mesh_like
from repro.partition import best_of, part_graph
from repro.trace import (
    NULL_TRACER,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullTracer,
    Sink,
    Span,
    TraceReport,
    Tracer,
    as_tracer,
    labeled,
    load_jsonl,
    render_span_tree,
    spans_from_events,
)
from repro.weights import type1_region_weights


@pytest.fixture(scope="module")
def mesh():
    g = mesh_like(600, seed=0)
    return g.with_vwgt(type1_region_weights(g, 2, seed=1))


class TestSpans:
    def test_nesting_and_attrs(self):
        tr = Tracer()
        with tr.span("root", a=1) as root:
            with tr.span("child") as c1:
                c1.set(x=2)
            with tr.span("child"):
                pass
        assert root.closed and root.seconds >= 0
        assert [c.name for c in root.children] == ["child", "child"]
        assert root.attrs == {"a": 1}
        assert root.children[0].attrs == {"x": 2}
        assert tr.root is root and tr.roots == [root]

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as a:
            assert tr.current is a
            with tr.span("b") as b:
                assert tr.current is b
            assert tr.current is a
        assert tr.current is None

    def test_find_walk_child(self):
        tr = Tracer()
        with tr.span("r"):
            with tr.span("p"):
                with tr.span("leaf", n=1):
                    pass
            with tr.span("leaf", n=2):
                pass
        r = tr.root
        assert r.find("leaf").attrs == {"n": 1}  # pre-order: nested first
        assert [sp.attrs["n"] for sp in r.find_all("leaf")] == [1, 2]
        assert r.child("leaf").attrs == {"n": 2}  # direct child only
        assert r.child("nope") is None
        assert [d for d, _ in r.walk()] == [0, 1, 2, 1]

    def test_finish_closes_open_spans(self):
        tr = Tracer()
        tr.span("a")
        tr.span("b")
        roots = tr.finish()
        assert len(roots) == 1
        assert roots[0].closed and roots[0].children[0].closed
        assert tr.finish() is roots  # idempotent

    def test_multiple_roots(self):
        tr = Tracer()
        with tr.span("one"):
            pass
        with tr.span("two"):
            pass
        assert [r.name for r in tr.roots] == ["one", "two"]


class TestNullTracer:
    def test_everything_is_noop(self):
        assert as_tracer(None) is NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x", a=1) as sp:
            assert sp.set(b=2) is sp
        assert sp.attrs == {}
        assert NULL_TRACER.span("y") is sp  # shared singleton span
        NULL_TRACER.incr("c")
        NULL_TRACER.gauge("g", 1.0)
        assert NULL_TRACER.finish() == ()

    def test_real_tracer_passes_through(self):
        tr = Tracer()
        assert as_tracer(tr) is tr


class TestMetrics:
    def test_registry(self):
        reg = MetricsRegistry()
        reg.counter("moves").inc(3)
        reg.counter("moves").inc()
        reg.gauge("cut").set(42)
        reg.histogram("lat").observe(0.01)
        assert reg.counter_values() == {"moves": 4}
        assert reg.gauge_values() == {"cut": 42}
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert d["counters"] == {"moves": 4}
        assert d["gauges"] == {"cut": 42}
        assert d["histograms"]["lat"]["count"] == 1
        assert d["histograms"]["lat"]["sum"] == pytest.approx(0.01)

    def test_tracer_shorthands(self):
        tr = Tracer()
        tr.incr("a", 2)
        tr.incr("a")
        tr.gauge("b", 7)
        tr.observe("c", 0.25)
        assert tr.metrics.counter_values() == {"a": 3}
        assert tr.metrics.gauge_values() == {"b": 7}
        assert tr.metrics.histogram("c").count == 1

    def test_histogram_exact_quantiles(self):
        h = Histogram("h")
        for v in (0.010, 0.012, 0.048, 0.250):
            h.observe(v)
        assert h.exact and h.count == 4
        assert h.min == 0.010 and h.max == 0.250
        assert h.quantile(0.0) == pytest.approx(0.010)
        assert h.quantile(0.5) == pytest.approx(0.030)  # midway 0.012..0.048
        assert h.quantile(1.0) == pytest.approx(0.250)

    def test_histogram_snapshot_buckets_cumulative(self):
        h = Histogram("h", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [[0.1, 1], [1.0, 2], [10.0, 3], ["+Inf", 4]]
        assert snap["count"] == 4
        assert snap["p50"] is not None

    def test_histogram_bucket_estimate_past_cap(self):
        h = Histogram("h", exact_cap=8)
        for i in range(100):
            h.observe(0.001 * (1 + i % 10))
        assert not h.exact and h.count == 100
        # Estimated quantiles stay inside the observed range.
        for q in (0.5, 0.9, 0.99):
            assert h.min <= h.quantile(q) <= h.max

    def test_histogram_empty_and_bad_bounds(self):
        assert Histogram("h").quantile(0.5) is None
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_snapshot_carries_quantile_caveat_past_cap(self):
        h = Histogram("h", exact_cap=8)
        for i in range(20):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["quantile_source"] == "bucket_estimate"
        assert "8" in snap["quantile_caveat"]
        exact = Histogram("h2")
        exact.observe(1.0)
        snap2 = exact.snapshot()
        assert snap2["quantile_source"] == "exact"
        assert "quantile_caveat" not in snap2


class TestMetricsMerge:
    """Cross-process merge semantics: merging per-worker registry splits
    must equal one registry that saw every observation."""

    def test_labeled_encodes_sorted_labels(self):
        assert labeled("steps", rank=0) == 'steps{rank="0"}'
        assert (labeled("x", b="2", a="1")
                == labeled("x", a="1", b="2")
                == 'x{a="1",b="2"}')

    def test_histogram_merge_of_splits_equals_whole(self):
        vals = [0.001 * (1 + i % 37) for i in range(60)]
        whole = Histogram("h", exact_cap=512)
        for v in vals:
            whole.observe(v)
        left, right = Histogram("h"), Histogram("h")
        for v in vals[:25]:
            left.observe(v)
        for v in vals[25:]:
            right.observe(v)
        left.merge(right)
        assert left.count == whole.count
        assert left.sum == pytest.approx(whole.sum)
        assert left.min == whole.min and left.max == whole.max
        assert left.snapshot()["buckets"] == whole.snapshot()["buckets"]
        # Both sides exact and merged count under the cap: quantiles exact.
        assert left.exact
        for q in (0.0, 0.5, 0.9, 1.0):
            assert left.quantile(q) == pytest.approx(whole.quantile(q))

    def test_merge_drops_samples_honestly_past_cap(self):
        a, b = Histogram("h", exact_cap=8), Histogram("h", exact_cap=8)
        for i in range(6):
            a.observe(float(i))
            b.observe(float(i))
        a.merge(b)  # 12 samples > cap of 8
        assert a.count == 12 and not a.exact
        assert a.snapshot()["quantile_source"] == "bucket_estimate"

    def test_merge_accepts_state_dict_and_rejects_bounds_mismatch(self):
        a = Histogram("h")
        b = Histogram("h")
        b.observe(0.5)
        a.merge(b.state())
        assert a.count == 1 and a.sum == pytest.approx(0.5)
        with pytest.raises(ValueError):
            a.merge(Histogram("o", bounds=(1.0, 2.0)))

    def test_registry_merge_with_labels_and_prefix(self):
        worker = MetricsRegistry()
        worker.counter("steps").inc(7)
        worker.gauge("cached").set(3)
        worker.histogram("lat").observe(0.25)
        parent = MetricsRegistry()
        parent.merge(worker.state(), labels={"rank": 1}, prefix="shm.")
        assert parent.counter_values() == {'shm.steps{rank="1"}': 7}
        assert parent.gauge_values() == {'shm.cached{rank="1"}': 3}
        h = parent.histogram_values()['shm.lat{rank="1"}']
        assert h["count"] == 1 and h["sum"] == pytest.approx(0.25)

    def test_registry_merge_of_splits_equals_whole(self):
        whole = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(3)]
        for i in range(30):
            reg = parts[i % 3]
            for r in (whole, reg):
                r.counter("n").inc()
                r.histogram("v").observe(0.01 * i)
        merged = MetricsRegistry()
        for reg in parts:
            merged.merge(reg)
        assert merged.counter_values() == whole.counter_values()
        ma = merged.histogram_values()["v"]
        wa = whole.histogram_values()["v"]
        assert ma["count"] == wa["count"]
        assert ma["sum"] == pytest.approx(wa["sum"])
        assert ma["buckets"] == wa["buckets"]


class TestSpanGraft:
    def test_graft_reparents_and_renumbers(self):
        child_tr = Tracer()
        with child_tr.span("worker", rank=0):
            with child_tr.span("phase"):
                pass
        child_tr.finish()
        sink = InMemorySink()
        tr = Tracer([sink])
        with tr.span("driver"):
            pass
        grafted = tr.graft(child_tr.root, parent=tr.root)
        assert grafted in tr.root.children
        assert grafted.parent_id == tr.root.span_id
        ids = {tr.root.span_id, grafted.span_id,
               grafted.children[0].span_id}
        assert len(ids) == 3  # renumbered: no collisions with the host
        roots = spans_from_events(sink.events)
        host = next(r for r in roots if r.name == "driver")
        assert [c.name for c in host.children] == ["worker"]
        assert [c.name for c in host.children[0].children] == ["phase"]

    def test_null_tracer_graft_is_noop(self):
        sp = Span(name="x", span_id=1)
        assert NULL_TRACER.graft(sp) is sp


class TestSinks:
    def test_in_memory_emits_children_before_parents(self):
        sink = InMemorySink()
        tr = Tracer([sink])
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        names = [e["name"] for e in sink.events]
        assert names == ["inner", "outer"]

    def test_metrics_event_on_finish(self):
        sink = InMemorySink()
        tr = Tracer([sink])
        with tr.span("s"):
            tr.incr("n", 5)
        tr.finish()
        assert sink.events[-1] == {"event": "metrics", "counters": {"n": 5},
                                   "gauges": {}}

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer([JsonlSink(path)])
        with tr.span("root", n=np.int64(3), f=np.float64(0.5),
                      arr=np.arange(2)):
            with tr.span("kid"):
                pass
        tr.gauge("cut", np.int64(9))
        tr.finish()

        events = load_jsonl(path)
        assert all(isinstance(json.dumps(e), str) for e in events)
        roots = spans_from_events(events)
        assert len(roots) == 1
        (root,) = roots
        assert root.name == "root"
        assert root.attrs == {"n": 3, "f": 0.5, "arr": [0, 1]}
        assert [c.name for c in root.children] == ["kid"]
        assert root.seconds >= root.children[0].seconds >= 0

    def test_spans_from_events_ignores_other_events(self):
        assert spans_from_events([{"event": "metrics", "counters": {}}]) == []

    def test_spans_from_events_out_of_order(self):
        # Children are emitted before parents in a live stream; the tree
        # must also survive arbitrary shuffling of the lines.
        tr = Tracer([sink := InMemorySink()])
        with tr.span("root"):
            with tr.span("mid"):
                with tr.span("leaf", n=1):
                    pass
            with tr.span("leaf", n=2):
                pass
        tr.finish()
        events = [e for e in sink.events if e["event"] == "span"]
        for order in (events, events[::-1],
                      sorted(events, key=lambda e: e["name"])):
            (root,) = spans_from_events(order)
            assert root.name == "root"
            assert [c.name for c in root.children] == ["mid", "leaf"]
            assert root.children[0].children[0].attrs == {"n": 1}
            assert root.find("leaf").attrs == {"n": 1}  # nesting preserved

    def test_sink_is_context_manager(self):
        class Recording(Sink):
            def __init__(self):
                self.events, self.closed = [], False

            def emit(self, event):
                self.events.append(event)

            def close(self):
                self.closed = True

        with Recording() as sink:
            sink.emit({"event": "x"})
        assert sink.closed and sink.events == [{"event": "x"}]

    def test_jsonl_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"event": "x"})
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"event": "y"})
        assert load_jsonl(tmp_path / "t.jsonl") == [{"event": "x"}]

    def test_tracer_finish_closes_sinks_once(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer([JsonlSink(path)])
        with tr.span("a"):
            pass
        roots = tr.finish()
        assert tr.finish() is roots  # second finish: no emit into dead sink
        assert [e["name"] for e in load_jsonl(path)] == ["a"]


class TestRender:
    def test_tree_shape_and_attrs(self):
        tr = Tracer()
        with tr.span("root", method="kway"):
            with tr.span("coarsen", levels=[100, 50]):
                pass
            with tr.span("refine"):
                with tr.span("level", nvtxs=100, imbalance=1.0499):
                    pass
        out = render_span_tree(tr.root)
        assert out.splitlines()[0].startswith("root")
        assert "├─ coarsen" in out and "└─ refine" in out
        assert "levels=[100, 50]" in out
        assert "imbalance=1.05" in out  # floats shortened

    def test_max_depth_truncates(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        out = render_span_tree(tr.root, max_depth=1)
        assert "b" in out and "c" not in out and "..." in out


class TestTraceReport:
    def test_kway_report(self, mesh):
        res = part_graph(mesh, 4, seed=2, collect_stats=True)
        rep = res.stats
        assert isinstance(rep, TraceReport)
        assert rep.method == "kway"
        assert rep.root.name == "partition"
        assert rep.root.attrs["cut"] == res.edgecut
        assert rep.root.attrs["feasible"] == res.feasible
        assert rep.total_seconds > 0
        for phase in ("coarsen", "initpart", "refine"):
            assert rep.phase(phase) is not None
            assert rep.phase_seconds(phase) >= 0
        assert rep.levels[0] == 600
        assert len(rep.level_trace()) == len(rep.levels) - 1
        assert rep.gauges["final.cut"] == res.edgecut
        assert rep.counters["kway.moves"] >= 0

    def test_dict_compatible_view(self, mesh):
        res = part_graph(mesh, 4, seed=2, collect_stats=True)
        st = res.stats
        # the pre-subsystem consumers' contract
        assert st["method"] == "kway"
        assert st["levels"] == sorted(st["levels"], reverse=True)
        assert len(st["trace"]) == len(st["levels"]) - 1
        for entry in st["trace"]:
            assert entry["cut"] >= 0 and entry["imbalance"] >= 1.0 - 1e-9
        assert st["coarsen_seconds"] >= 0
        assert "refine_seconds" in st and "initpart_seconds" in st
        assert dict(st)["method"] == "kway"  # Mapping protocol
        assert st.get("nope") is None

    def test_recursive_report(self, mesh):
        res = part_graph(mesh, 5, method="recursive", seed=3,
                         collect_stats=True)
        st = res.stats
        assert st["method"] == "recursive"
        assert st["bisections"] == 4
        assert st["trace"][0]["nvtxs"] == 600
        assert st["total_seconds"] > 0
        assert res.stats.bisection_trace()[0]["parts"] == 5

    def test_explicit_tracer_without_collect_stats(self, mesh):
        sink = InMemorySink()
        tracer = Tracer([sink])
        res = part_graph(mesh, 3, seed=4, tracer=tracer)
        assert res.stats is not None
        assert res.stats["method"] == "kway"
        tracer.finish()
        assert any(e["name"] == "partition" for e in sink.events
                   if e["event"] == "span")

    def test_default_is_untraced(self, mesh):
        assert part_graph(mesh, 3, seed=5).stats is None

    def test_from_events_roundtrip(self, mesh, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(path)])
        res = part_graph(mesh, 4, seed=6, tracer=tracer)
        tracer.finish()
        rep = TraceReport.from_events(load_jsonl(path))
        assert rep.method == "kway"
        assert rep["levels"] == res.stats["levels"]
        assert [t["cut"] for t in rep["trace"]] == \
               [t["cut"] for t in res.stats["trace"]]
        assert rep.gauges["final.cut"] == res.edgecut

    def test_render_mentions_phases(self, mesh):
        res = part_graph(mesh, 4, seed=7, collect_stats=True)
        out = res.stats.render()
        for token in ("partition", "coarsen", "initpart", "refine",
                      "cut=", "max_imbalance="):
            assert token in out
        assert "counters:" in out and "gauges:" in out

    def test_empty_report(self):
        rep = TraceReport(None)
        assert rep.method is None and rep.levels == []
        assert rep.render() == "(empty trace)"

    def test_ensemble_traces_every_run(self, mesh):
        tracer = Tracer()
        ens = best_of(mesh, 4, 3, seed=8, tracer=tracer)
        assert len(tracer.roots) == 3
        assert ens.best.stats is not None
        assert ens.best.stats["method"] == "kway"


class TestDriverSpans:
    def test_coarsen_levels_recorded(self, mesh):
        res = part_graph(mesh, 4, seed=9, collect_stats=True)
        spans = res.stats.phase("coarsen").find_all("coarsen_level")
        contracted = [sp for sp in spans if "coarse_nvtxs" in sp.attrs]
        assert len(contracted) == len(res.stats.levels) - 1
        for sp in contracted:
            assert 0 < sp.attrs["shrink"] <= 1.0
            assert sp.attrs["coarse_nvtxs"] < sp.attrs["nvtxs"]

    def test_initpart_candidates_counted(self, mesh):
        res = part_graph(mesh, 4, seed=10, collect_stats=True)
        init = res.stats.phase("initpart")
        cand = init.find("initbisect")
        assert cand is not None
        assert cand.attrs["candidates"] > 0
        assert res.stats.counters["initpart.candidates"] >= cand.attrs["candidates"]

    def test_recursive_fm_levels(self, mesh):
        res = part_graph(mesh, 2, method="recursive", seed=11,
                         collect_stats=True)
        fm = res.stats.root.find_all("fm_level")
        assert fm, "multilevel bisection should FM-refine per level"
        assert all("cut" in sp.attrs for sp in fm)
        assert res.stats.counters["fm.passes"] >= len(fm)

    def test_parallel_driver_trace(self, mesh):
        from repro.parallel import parallel_part_graph

        tracer = Tracer()
        res = parallel_part_graph(mesh, 4, 4, tracer=tracer)
        tracer.finish()
        root = tracer.root
        assert root.name == "parallel_partition"
        assert root.attrs["nranks"] == 4
        assert root.attrs["cut"] == res.edgecut
        assert root.attrs["sim_seconds"] == pytest.approx(
            sum(res.phase_times.values()))
        for phase in ("coarsen", "initpart", "refine"):
            sp = root.child(phase)
            assert sp is not None and sp.attrs["sim_seconds"] >= 0
        levels = root.child("refine").find_all("level")
        assert len(levels) == res.levels
        assert all("committed" in sp.attrs for sp in levels)


class TestTraceDiagnostics:
    def test_coarsening_profile_from_trace(self, mesh):
        res = part_graph(mesh, 4, seed=12, collect_stats=True)
        prof = coarsening_profile_from_trace(res.stats)
        assert [p["nvtxs"] for p in prof] == res.stats["levels"]
        assert prof[0]["shrink"] == 1.0
        assert all(0 < p["shrink"] <= 1.0 for p in prof[1:])
        assert all(p["exposed_edge_weight"] > 0 for p in prof)
        text = profile_text(prof)
        assert "coarsening profile" in text and "600" in text

    def test_refinement_profile_from_trace(self, mesh):
        res = part_graph(mesh, 4, seed=13, collect_stats=True)
        prof = refinement_profile(res.stats)
        assert len(prof) == len(res.stats["trace"])
        assert prof[-1]["nvtxs"] == 600  # finest level last
        assert all(p["seconds"] >= 0 for p in prof)
        text = refinement_profile_text(prof)
        assert "refinement trace" in text

    def test_profiles_empty_without_phases(self):
        rep = TraceReport(None)
        assert coarsening_profile_from_trace(rep) == []
        assert refinement_profile(rep) == []


class TestNoopOverheadGuard:
    def test_null_span_is_cheap(self):
        # Regression guard for the zero-overhead claim (the real budget is
        # asserted in benchmarks/bench_trace_overhead.py): 10k null spans
        # must be effectively instant.
        import time

        t0 = time.perf_counter()
        for _ in range(10_000):
            with NULL_TRACER.span("x", nvtxs=1):
                pass
        assert time.perf_counter() - t0 < 0.5
