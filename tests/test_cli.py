"""Tests for the repro-part CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import mesh_like, read_partition, write_metis_graph
from repro.weights import random_vwgt


@pytest.fixture
def graph_file(tmp_path):
    g = mesh_like(300, seed=0).with_vwgt(random_vwgt(300, 2, low=1, high=9, seed=1))
    p = tmp_path / "g.graph"
    write_metis_graph(g, p)
    return str(p)


class TestCLI:
    def test_partition_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        rc = main([graph_file, "4", "--seed", "0", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "feasible" in text
        part = read_partition(out, 300)
        assert set(np.unique(part)) == set(range(4))

    def test_demo_mode(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1"])
        assert rc == 0
        assert "synthetic mesh" in capsys.readouterr().out

    def test_quiet(self, graph_file, capsys):
        rc = main([graph_file, "2", "--quiet", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1

    def test_recursive_method(self, graph_file, capsys):
        rc = main([graph_file, "3", "--method", "recursive", "--seed", "2"])
        assert rc == 0
        assert "recursive" in capsys.readouterr().out

    def test_missing_graph_arg(self, capsys):
        rc = main(["4"])  # nparts only, no file, no demo
        assert rc == 2

    def test_bad_file(self, tmp_path, capsys):
        p = tmp_path / "bad.graph"
        p.write_text("not a graph\n")
        rc = main([str(p), "2"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_too_many_parts(self, graph_file, capsys):
        rc = main([graph_file, "9999"])
        assert rc == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args(["g.graph", "4"])
        assert args.method == "kway"
        assert args.tol == 1.05


class TestEvaluateMode:
    def test_evaluate_partition_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        assert main([graph_file, "4", "--seed", "0", "--out", str(out), "--quiet"]) == 0
        capsys.readouterr()
        rc = main([graph_file, "4", "--evaluate", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cut=" in text and "imbalance=" in text

    def test_evaluate_too_many_parts(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        main([graph_file, "4", "--seed", "0", "--out", str(out), "--quiet"])
        capsys.readouterr()
        rc = main([graph_file, "2", "--evaluate", str(out)])
        assert rc == 1

    def test_svg_output_demo(self, tmp_path, capsys):
        svg = tmp_path / "demo.svg"
        rc = main(["--demo", "150", "3", "--seed", "1", "--svg", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")

    def test_evaluate_reports_per_constraint_balance(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        main([graph_file, "4", "--seed", "3", "--out", str(out), "--quiet"])
        capsys.readouterr()
        rc = main([graph_file, "4", "--evaluate", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        # 2-constraint graph: the report lists a balance line per constraint
        assert "constraint" in text
        assert "300 vertices" in text

    def test_evaluate_missing_part_file(self, graph_file, tmp_path, capsys):
        rc = main([graph_file, "4", "--evaluate", str(tmp_path / "nope.part")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_evaluate_never_writes_trace(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        main([graph_file, "4", "--seed", "0", "--out", str(out), "--quiet"])
        capsys.readouterr()
        trace = tmp_path / "t.jsonl"
        rc = main([graph_file, "4", "--evaluate", str(out),
                   "--trace", str(trace)])
        assert rc == 0
        assert not trace.exists()


class TestTraceFlags:
    def test_trace_writes_valid_jsonl(self, graph_file, tmp_path, capsys):
        from repro.trace import TraceReport, load_jsonl, spans_from_events

        trace = tmp_path / "run.jsonl"
        rc = main([graph_file, "4", "--seed", "5", "--trace", str(trace)])
        assert rc == 0
        assert f"trace written to {trace}" in capsys.readouterr().out

        events = load_jsonl(trace)
        assert events, "trace file must not be empty"
        kinds = {e["event"] for e in events}
        assert kinds == {"span", "level", "metrics"}
        roots = spans_from_events(events)
        assert [r.name for r in roots] == ["partition"]
        root = roots[0]
        assert root.attrs["nparts"] == 4
        assert root.attrs["nvtxs"] == 300
        assert {c.name for c in root.children} >= {"coarsen", "initpart", "refine"}

        # round-trip: the report rebuilt from the file matches the run
        rep = TraceReport.from_events(events)
        assert rep.method == "kway"
        assert rep.gauges["final.cut"] == root.attrs["cut"]
        assert len(rep["trace"]) == len(rep["levels"]) - 1

    def test_trace_summary_prints_span_tree(self, graph_file, capsys):
        rc = main([graph_file, "4", "--seed", "5", "--trace-summary"])
        assert rc == 0
        out = capsys.readouterr().out
        for token in ("partition", "coarsen", "initpart", "refine",
                      "cut=", "max_imbalance=", "counters:"):
            assert token in out

    def test_trace_and_summary_together_demo(self, tmp_path, capsys):
        trace = tmp_path / "demo.jsonl"
        rc = main(["--demo", "200", "4", "--seed", "2",
                   "--trace", str(trace), "--trace-summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "partition" in out and "level" in out
        assert trace.exists() and trace.stat().st_size > 0

    def test_trace_quiet_suppresses_notice(self, graph_file, tmp_path, capsys):
        trace = tmp_path / "q.jsonl"
        rc = main([graph_file, "2", "--seed", "0", "--quiet",
                   "--trace", str(trace)])
        assert rc == 0
        assert "trace written" not in capsys.readouterr().out
        assert trace.exists()

    def test_metrics_port_serves_and_closes(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "2",
                   "--metrics-port", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines()
                    if ln.startswith("metrics: http://127.0.0.1:"))
        # The endpoint is torn down with the run: the port is free again.
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(line.split("metrics: ")[1], timeout=1)

    def test_metrics_port_quiet_suppresses_url(self, capsys):
        rc = main(["--demo", "200", "2", "--seed", "0", "--quiet",
                   "--metrics-port", "0"])
        assert rc == 0
        assert "metrics:" not in capsys.readouterr().out

    def test_metrics_port_bind_conflict_errors(self, capsys):
        from repro.obs import MetricsServer

        with MetricsServer() as srv:
            rc = main(["--demo", "200", "2", "--seed", "0",
                       "--metrics-port", str(srv.port)])
        assert rc == 1
        assert "cannot bind metrics server" in capsys.readouterr().err

    def test_trace_with_ensemble(self, graph_file, tmp_path, capsys):
        from repro.trace import load_jsonl, spans_from_events

        trace = tmp_path / "ens.jsonl"
        rc = main([graph_file, "3", "--nseeds", "3", "--seed", "1",
                   "--quiet", "--trace", str(trace)])
        assert rc == 0
        roots = spans_from_events(load_jsonl(trace))
        assert [r.name for r in roots] == ["partition"] * 3

    def test_no_trace_flags_no_stats(self, graph_file, capsys):
        # without the flags the run stays on the no-op path
        rc = main([graph_file, "2", "--seed", "0", "--quiet"])
        assert rc == 0
        assert "counters:" not in capsys.readouterr().out


class TestProfileFlags:
    def test_profile_prints_per_level_dashboard(self, graph_file, capsys):
        rc = main([graph_file, "4", "--seed", "5", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "multilevel profile" in out
        assert "coarsen" in out and "initpart" in out and "refine" in out
        # every uncoarsening row carries both constraints' imbalance
        refine_rows = [ln for ln in out.splitlines()
                       if ln.startswith("refine")]
        assert refine_rows
        for ln in refine_rows:
            assert "," in ln.split()[5]  # imbalance column: "1.050,1.048"

    def test_profile_json_artifact_roundtrips(self, graph_file, tmp_path,
                                              capsys):
        from repro.obs import MultilevelProfile
        import json

        path = tmp_path / "prof.json"
        rc = main([graph_file, "4", "--seed", "5", "--quiet",
                   "--profile-json", str(path)])
        assert rc == 0
        prof = MultilevelProfile.from_dict(json.loads(path.read_text()))
        assert prof.method == "kway" and prof.nparts == 4
        assert prof.nvtxs == 300
        assert prof.coarsening and prof.uncoarsening
        assert prof.final_cut is not None

    def test_profile_recursive_method(self, graph_file, capsys):
        rc = main([graph_file, "2", "--method", "recursive", "--seed", "3",
                   "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fm_refine" in out and "initbisect" in out

    def test_profile_parallel_driver(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3",
                   "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "multilevel profile: parallel" in out and "refine" in out

    def test_trace_bad_parent_dir_fails_fast(self, graph_file, tmp_path,
                                             capsys):
        rc = main([graph_file, "2", "--trace",
                   str(tmp_path / "no" / "such" / "dir" / "t.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "directory" in err and "does not exist" in err

    def test_profile_json_bad_parent_dir_fails_fast(self, graph_file,
                                                    tmp_path, capsys):
        rc = main([graph_file, "2", "--profile-json",
                   str(tmp_path / "missing" / "p.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_profile_rejects_serve_modes(self, graph_file, capsys):
        rc = main([graph_file, "2", "--profile", "--cache"])
        assert rc == 2


class TestEnsembleAndNpz:
    def test_nseeds_ensemble(self, graph_file, capsys):
        rc = main([graph_file, "4", "--nseeds", "3", "--seed", "1", "--quiet"])
        assert rc == 0
        assert "best of 3" in capsys.readouterr().out

    def test_npz_input(self, tmp_path, capsys):
        from repro.graph import mesh_like, save_npz

        g = mesh_like(200, seed=0)
        p = tmp_path / "g.npz"
        save_npz(g, str(p))
        rc = main([str(p), "4", "--seed", "2", "--quiet"])
        assert rc == 0
        assert "feasible" in capsys.readouterr().out


class TestParallelAndFaultFlags:
    def test_ranks_runs_parallel(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3"])
        assert rc == 0
        assert "parallel(p=3)" in capsys.readouterr().out

    def test_fault_spec_injects(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3",
                   "--fault-spec", "drop=0.05,seed=7"])
        assert rc == 0
        assert "faults injected" in capsys.readouterr().out

    def test_fault_spec_requires_ranks(self, capsys):
        rc = main(["--demo", "200", "4", "--fault-spec", "drop=0.1"])
        assert rc == 2
        assert "--ranks" in capsys.readouterr().err

    def test_ranks_and_nseeds_conflict(self, capsys):
        rc = main(["--demo", "200", "4", "--ranks", "2", "--nseeds", "3"])
        assert rc == 2

    def test_bad_fault_spec_is_typed_error(self, capsys):
        rc = main(["--demo", "200", "4", "--ranks", "2",
                   "--fault-spec", "nonsense=1"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_strict_serial(self, graph_file, capsys):
        rc = main([graph_file, "4", "--seed", "0", "--strict", "--quiet"])
        assert rc == 0
        assert "feasible" in capsys.readouterr().out

    def test_heavy_faults_degrade_with_warning(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3",
                   "--fault-spec", "drop=0.7,pcrash=0.2,seed=1"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.out
        assert "degraded to serial fallback" in captured.err

    def test_strict_heavy_faults_fail(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3",
                   "--strict", "--fault-spec", "drop=0.7,pcrash=0.2,seed=1"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_parallel_trace_summary(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1", "--ranks", "3",
                   "--trace-summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel_partition" in out
        assert "sim_seconds=" in out
