"""Tests for the repro-part CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import mesh_like, read_partition, write_metis_graph
from repro.weights import random_vwgt


@pytest.fixture
def graph_file(tmp_path):
    g = mesh_like(300, seed=0).with_vwgt(random_vwgt(300, 2, low=1, high=9, seed=1))
    p = tmp_path / "g.graph"
    write_metis_graph(g, p)
    return str(p)


class TestCLI:
    def test_partition_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        rc = main([graph_file, "4", "--seed", "0", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "feasible" in text
        part = read_partition(out, 300)
        assert set(np.unique(part)) == set(range(4))

    def test_demo_mode(self, capsys):
        rc = main(["--demo", "200", "4", "--seed", "1"])
        assert rc == 0
        assert "synthetic mesh" in capsys.readouterr().out

    def test_quiet(self, graph_file, capsys):
        rc = main([graph_file, "2", "--quiet", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1

    def test_recursive_method(self, graph_file, capsys):
        rc = main([graph_file, "3", "--method", "recursive", "--seed", "2"])
        assert rc == 0
        assert "recursive" in capsys.readouterr().out

    def test_missing_graph_arg(self, capsys):
        rc = main(["4"])  # nparts only, no file, no demo
        assert rc == 2

    def test_bad_file(self, tmp_path, capsys):
        p = tmp_path / "bad.graph"
        p.write_text("not a graph\n")
        rc = main([str(p), "2"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_too_many_parts(self, graph_file, capsys):
        rc = main([graph_file, "9999"])
        assert rc == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args(["g.graph", "4"])
        assert args.method == "kway"
        assert args.tol == 1.05


class TestEvaluateMode:
    def test_evaluate_partition_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        assert main([graph_file, "4", "--seed", "0", "--out", str(out), "--quiet"]) == 0
        capsys.readouterr()
        rc = main([graph_file, "4", "--evaluate", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cut=" in text and "imbalance=" in text

    def test_evaluate_too_many_parts(self, graph_file, tmp_path, capsys):
        out = tmp_path / "g.part"
        main([graph_file, "4", "--seed", "0", "--out", str(out), "--quiet"])
        capsys.readouterr()
        rc = main([graph_file, "2", "--evaluate", str(out)])
        assert rc == 1

    def test_svg_output_demo(self, tmp_path, capsys):
        svg = tmp_path / "demo.svg"
        rc = main(["--demo", "150", "3", "--seed", "1", "--svg", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")


class TestEnsembleAndNpz:
    def test_nseeds_ensemble(self, graph_file, capsys):
        rc = main([graph_file, "4", "--nseeds", "3", "--seed", "1", "--quiet"])
        assert rc == 0
        assert "best of 3" in capsys.readouterr().out

    def test_npz_input(self, tmp_path, capsys):
        from repro.graph import mesh_like, save_npz

        g = mesh_like(200, seed=0)
        p = tmp_path / "g.npz"
        save_npz(g, str(p))
        rc = main([str(p), "4", "--seed", "2", "--quiet"])
        assert rc == 0
        assert "feasible" in capsys.readouterr().out
