"""Unit tests for gain bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import from_edges, grid_2d
from repro.refine import (
    boundary_from_ed,
    compute_2way_degrees,
    edge_cut,
    neighbor_part_weights,
)


class TestEdgeCut:
    def test_no_cut(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert edge_cut(g, [0, 0, 1, 1]) == 0

    def test_full_cut(self):
        g = from_edges(2, [(0, 1)], weights=[7])
        assert edge_cut(g, [0, 1]) == 7

    def test_grid_stripes(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)
        assert edge_cut(g, part) == 4

    def test_kway(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 1, 2, 3], 4)
        assert edge_cut(g, part) == 12

    def test_bad_shape(self):
        with pytest.raises(PartitionError):
            edge_cut(grid_2d(2, 2), [0, 1])


class TestDegrees:
    def test_sum_identity(self, mesh500):
        rng = np.random.default_rng(0)
        where = rng.integers(0, 2, 500)
        id_, ed = compute_2way_degrees(mesh500, where)
        # id + ed = weighted degree.
        src = np.repeat(np.arange(500), np.diff(mesh500.xadj))
        wdeg = np.zeros(500, dtype=np.int64)
        np.add.at(wdeg, src, mesh500.adjwgt)
        assert np.array_equal(id_ + ed, wdeg)
        assert int(ed.sum()) // 2 == edge_cut(mesh500, where)

    def test_boundary(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)
        id_, ed = compute_2way_degrees(g, part)
        bnd = boundary_from_ed(ed)
        assert sorted(bnd.tolist()) == list(range(4, 12))


class TestNeighborPartWeights:
    def test_counts_by_part(self):
        g = from_edges(4, [(0, 1), (0, 2), (0, 3)], weights=[1, 2, 3])
        nbw = neighbor_part_weights(g, np.array([0, 0, 1, 1]), 0)
        assert nbw == {0: 1, 1: 5}
