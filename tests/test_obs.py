"""Tests for repro.obs: the flight recorder and MultilevelProfile, the
per-level dashboard, Prometheus exposition + validation, and drift
checking against recorded baselines."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.errors import ObsError
from repro.graph import mesh_like
from repro.obs import (
    DriftTolerances,
    FlightRecorder,
    LevelRecord,
    MultilevelProfile,
    check_baseline,
    compare_profiles,
    load_baseline,
    parse_exposition,
    profile_from_events,
    render_profile,
    render_prometheus,
)
from repro.partition import part_graph
from repro.trace import JsonlSink, Tracer, load_jsonl
from repro.weights import type1_region_weights


@pytest.fixture(scope="module")
def mesh():
    g = mesh_like(600, seed=0)
    return g.with_vwgt(type1_region_weights(g, 2, seed=1))


def record(graph, nparts, **kwargs):
    rec = FlightRecorder()
    tracer = Tracer([rec])
    res = part_graph(graph, nparts, tracer=tracer, **kwargs)
    tracer.finish()
    return res, rec.profile()


@pytest.fixture(scope="module")
def kway(mesh):
    return record(mesh, 4, seed=2)


class TestFlightRecorderKway:
    def test_identity_fields(self, kway):
        res, prof = kway
        assert prof.method == "kway"
        assert prof.nparts == 4 and prof.ncon == 2
        assert prof.nvtxs == 600
        assert prof.final_cut == res.edgecut
        assert prof.feasible == res.feasible
        assert prof.total_seconds > 0

    def test_both_ladders_and_initial(self, kway):
        _, prof = kway
        assert prof.nlevels >= 1
        assert prof.initial is not None
        assert prof.initial.phase == "initpart"
        assert len(prof.uncoarsening) == prof.nlevels
        # coarsening runs finest -> coarsest, uncoarsening back up
        assert [r.level for r in prof.coarsening] == list(range(prof.nlevels))
        assert [r.level for r in prof.uncoarsening] == \
            list(range(prof.nlevels - 1, -1, -1))
        assert prof.uncoarsening[-1].nvtxs == 600

    def test_every_row_has_cut_and_imbalance(self, kway):
        _, prof = kway
        rows = prof.rows()
        assert len(rows) == 2 * prof.nlevels + 1
        for row in rows:
            assert row.cut is not None and row.cut >= 0
            assert row.imbalance is not None and len(row.imbalance) == 2
            assert all(v >= 1.0 - 1e-9 for v in row.imbalance)
            assert row.maxload is not None and len(row.maxload) == 2

    def test_coarsening_fill_in_matches_arrival_state(self, kway):
        # Projection preserves cut and part weights, so coarsening level i
        # carries the state refinement arrives in at level i.
        _, prof = kway
        by_level = {r.level: r for r in prof.uncoarsening}
        for row in prof.coarsening:
            assert row.cut == by_level[row.level].cut_before
            above = by_level.get(row.level + 1) or prof.initial
            assert row.imbalance == above.imbalance

    def test_coarsening_quality_fields(self, kway):
        _, prof = kway
        for row in prof.coarsening:
            assert 0.0 < row.matching_rate <= 1.0
            assert 0.0 < row.shrink < 1.0
            assert row.direction == "coarsening"

    def test_refinement_monotone_cut(self, kway):
        _, prof = kway
        for row in prof.uncoarsening:
            assert row.cut <= row.cut_before
            assert row.passes >= 1
        assert prof.final_imbalance == prof.uncoarsening[-1].imbalance

    def test_nested_rb_pipeline_is_scoped_out(self, kway):
        # The k-way driver runs a full recursive bisection on its coarsest
        # graph; none of its internal levels may leak into the profile.
        _, prof = kway
        coarsest = prof.coarsening[-1].nvtxs if prof.coarsening else 600
        for row in prof.uncoarsening:
            assert row.phase == "refine"
        assert prof.initial.nvtxs <= coarsest

    def test_phase_seconds_and_metrics(self, kway):
        _, prof = kway
        for phase in ("coarsen", "initpart", "refine"):
            assert prof.phase_seconds[phase] >= 0
        assert prof.counters["kway.moves"] >= 0
        assert prof.gauges["final.cut"] == prof.final_cut
        assert prof.histograms["phase_seconds.refine"]["count"] == 1

    def test_recording_is_bit_identical(self, mesh, kway):
        res, _ = kway
        plain = part_graph(mesh, 4, seed=2)
        assert plain.edgecut == res.edgecut
        assert np.array_equal(plain.part, res.part)


class TestFlightRecorderOtherDrivers:
    def test_recursive_profile_follows_top_split(self, mesh):
        res, prof = record(mesh, 2, method="recursive", seed=3)
        assert prof.method == "recursive"
        assert prof.final_cut == res.edgecut
        assert prof.initial is not None and prof.initial.phase == "initbisect"
        assert prof.coarsening and prof.uncoarsening
        assert all(r.phase == "fm_refine" for r in prof.uncoarsening)
        for row in prof.rows():
            assert row.cut is not None
            assert row.imbalance is not None and len(row.imbalance) == 2

    def test_parallel_profile(self, mesh):
        from repro.parallel import parallel_part_graph

        rec = FlightRecorder()
        tracer = Tracer([rec])
        res = parallel_part_graph(mesh, 4, 3, tracer=tracer)
        tracer.finish()
        prof = rec.profile()
        assert prof.method == "parallel"
        assert prof.final_cut == res.edgecut
        assert prof.uncoarsening
        for row in prof.uncoarsening:
            assert row.cut is not None and len(row.imbalance) == 2


class TestProfileSerialisation:
    def test_json_roundtrip(self, kway):
        _, prof = kway
        back = MultilevelProfile.from_dict(json.loads(prof.to_json()))
        assert back.to_dict() == prof.to_dict()
        assert back.nlevels == prof.nlevels
        assert back.uncoarsening[-1].cut == prof.final_cut

    def test_profile_from_jsonl_file(self, mesh, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(path)])
        res = part_graph(mesh, 4, seed=2, tracer=tracer)
        tracer.finish()
        prof = profile_from_events(load_jsonl(path))
        assert prof.method == "kway"
        assert prof.final_cut == res.edgecut
        assert prof.coarsening and prof.uncoarsening

    def test_empty_event_stream(self):
        prof = profile_from_events([])
        assert prof.method is None and prof.rows() == []
        assert prof.nlevels == 0

    def test_rank_phases_round_trip_and_render(self, kway):
        _, base = kway
        prof = MultilevelProfile.from_dict(base.to_dict())
        prof.rank_phases = [
            {"rank": 0, "compute_seconds": 0.5, "pipe_wait_seconds": 0.1,
             "publish_seconds": 0.01, "steps": 12,
             "phases": {"coarsen": {"compute": 0.4}}},
            {"rank": 1, "compute_seconds": 0.4, "pipe_wait_seconds": 0.2,
             "publish_seconds": 0.02, "steps": 12, "phases": {}},
        ]
        back = MultilevelProfile.from_dict(json.loads(prof.to_json()))
        assert back.rank_phases == prof.rank_phases
        out = render_profile(back)
        assert "workers (shm):" in out
        assert "pipe-wait" in out
        # Profiles without worker rows keep the old dashboard untouched.
        assert "workers (shm):" not in render_profile(base)


class TestRenderProfile:
    def test_dashboard_contents(self, kway):
        _, prof = kway
        out = render_profile(prof)
        assert "multilevel profile: kway k=4 m=2 n=600" in out
        assert f"cut={prof.final_cut}" in out
        for token in ("coarsen", "initpart", "refine", "phases:",
                      "initial partition", "moves"):
            assert token in out
        # one line per row, each showing both constraints' imbalance
        body = [ln for ln in out.splitlines()
                if ln.startswith(("coarsen", "initpart", "refine"))]
        assert len(body) == len(prof.rows())
        for ln in body:
            assert "," in ln.split()[5]

    def test_empty_profile_renders(self):
        out = render_profile(MultilevelProfile(
            method=None, nparts=None, ncon=None, nvtxs=None, nedges=None))
        assert "multilevel profile" in out


class TestPrometheus:
    def test_render_from_profile_and_parse(self, kway):
        _, prof = kway
        text = render_prometheus(prof)
        families = parse_exposition(text)
        assert "repro_final_cut" in families
        assert families["repro_final_cut"]["type"] == "gauge"
        hist = [n for n, d in families.items() if d["type"] == "histogram"]
        assert hist, "profile exposition must carry histogram families"
        name = hist[0]
        samples = {s[0]: s for s in families[name]["samples"]
                   if not s[0].endswith("_bucket")}
        assert f"{name}_count" in samples and f"{name}_sum" in samples

    def test_render_explicit_dicts(self):
        text = render_prometheus(counters={"a.b": 3}, gauges={"x": 1.5})
        assert "# TYPE repro_a_b counter" in text
        assert "repro_a_b 3" in text
        assert "repro_x 1.5" in text

    def test_bucket_series_cumulative_to_inf(self, kway):
        _, prof = kway
        families = parse_exposition(render_prometheus(prof))
        name, d = next((n, d) for n, d in families.items()
                       if d["type"] == "histogram")
        buckets = [s for s in d["samples"] if s[0] == f"{name}_bucket"]
        counts = [v for _, _, v in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][1]["le"] == "+Inf"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ObsError):
            parse_exposition("this is { not an exposition\n")

    def test_parse_rejects_non_cumulative_buckets(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ObsError, match="cumulative|non-decreasing"):
            parse_exposition(bad)

    def test_parse_rejects_missing_inf_bucket(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
            "repro_h_sum 1\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ObsError):
            parse_exposition(bad)

    def test_labeled_series_round_trip(self):
        from repro.trace import MetricsRegistry, labeled

        reg = MetricsRegistry()
        for rank in (0, 1):
            reg.counter(labeled("shm.worker.steps", rank=rank)).inc(rank + 1)
            reg.histogram(
                labeled("shm.worker.compute_seconds", rank=rank)).observe(
                    0.01 * (rank + 1))
        text = render_prometheus(reg)
        # One TYPE line per base family despite two label combinations.
        assert text.count("# TYPE repro_shm_worker_steps counter") == 1
        assert text.count(
            "# TYPE repro_shm_worker_compute_seconds histogram") == 1
        families = parse_exposition(text)
        samples = families["repro_shm_worker_steps"]["samples"]
        by_rank = {s[1]["rank"]: s[2] for s in samples}
        assert by_rank == {"0": 1.0, "1": 2.0}
        hsamples = families["repro_shm_worker_compute_seconds"]["samples"]
        counts = {s[1]["rank"]: s[2] for s in hsamples
                  if s[0].endswith("_count")}
        assert counts == {"0": 1.0, "1": 1.0}

    def test_labeled_histogram_invariants_checked_per_label_set(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{rank="0",le="+Inf"} 2\n'
            'repro_h_count{rank="0"} 2\n'
            'repro_h_bucket{rank="1",le="+Inf"} 5\n'
            'repro_h_count{rank="1"} 4\n'  # +Inf != count for rank=1 only
            "repro_h_sum 1\n"
        )
        with pytest.raises(ObsError, match='rank="1"'):
            parse_exposition(bad)


class TestDriftChecking:
    def test_profile_never_drifts_from_itself(self, kway):
        _, prof = kway
        rep = compare_profiles(prof, prof)
        assert rep.ok and not rep.violations
        assert rep.checked >= 8
        assert "OK" in rep.summary()

    def test_cut_drift_beyond_tolerance(self, kway):
        _, prof = kway
        moved = MultilevelProfile.from_dict(prof.to_dict())
        moved.final_cut = int(prof.final_cut * 1.5)
        rep = compare_profiles(moved, prof, DriftTolerances(cut_rel=0.10))
        assert not rep.ok
        assert any("final cut" in v for v in rep.violations)
        assert "FAILED" in rep.summary() or "violation" in rep.summary()

    def test_identity_mismatch_is_violation(self, kway):
        _, prof = kway
        other = MultilevelProfile.from_dict(prof.to_dict())
        other.nparts = 8
        rep = compare_profiles(other, prof)
        assert any("nparts" in v for v in rep.violations)

    def test_imbalance_and_depth_tolerances(self, kway):
        _, prof = kway
        near = MultilevelProfile.from_dict(prof.to_dict())
        near.final_cut = prof.final_cut + 1
        near.final_imbalance = [v + 0.01 for v in prof.final_imbalance]
        assert compare_profiles(near, prof).ok

        far = MultilevelProfile.from_dict(prof.to_dict())
        far.final_imbalance = [v + 0.2 for v in prof.final_imbalance]
        assert not compare_profiles(far, prof).ok

    def test_infeasible_current_flagged(self, kway):
        _, prof = kway
        bad = MultilevelProfile.from_dict(prof.to_dict())
        bad.feasible = False
        rep = compare_profiles(bad, prof)
        assert any("infeasible" in v for v in rep.violations)

    def test_check_baseline_roundtrip(self, kway, tmp_path):
        _, prof = kway
        path = tmp_path / "baseline.json"
        path.write_text(prof.to_json())
        assert load_baseline(path).final_cut == prof.final_cut
        assert check_baseline(prof, path).ok

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ObsError, match="baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_baseline_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("not json{{")
        with pytest.raises(ObsError):
            load_baseline(p)
        p.write_text("[1, 2, 3]")
        with pytest.raises(ObsError):
            load_baseline(p)


class TestServeMetrics:
    def test_latency_by_outcome_and_exposition(self, mesh):
        from repro.serve import PartitionService

        with PartitionService() as svc:
            r1 = svc.partition(mesh, 4, seed=2)
            r2 = svc.partition(mesh, 4, seed=2)   # cache hit
            assert np.array_equal(r1.part, r2.part)
            cold = svc.latency("cold")
            hit = svc.latency("hit")
            assert cold["count"] == 1 and cold["sum"] > 0
            assert hit["count"] == 1
            assert svc.latency("timeout") is None  # no such outcome yet
            text = svc.metrics_text()

        families = parse_exposition(text)
        assert families["repro_serve_latency_cold"]["type"] == "histogram"
        assert families["repro_serve_latency_hit"]["type"] == "histogram"
        assert families["repro_serve_requests"]["type"] == "counter"
        assert families["repro_serve_cache_entries"]["type"] == "gauge"
        # the admission layer's live queue gauges + shed counters are
        # always exposed (zero-valued on an idle thread backend)
        assert families["repro_serve_inflight"]["type"] == "gauge"
        assert families["repro_serve_queue_depth"]["type"] == "gauge"
        assert families["repro_serve_shed"]["type"] == "counter"
        assert families["repro_serve_shed_batch"]["type"] == "counter"

    def test_queue_gauges_track_load_and_disk_tier_exposes(self, mesh,
                                                           tmp_path):
        """`serve.inflight`/`serve.queue_depth` reflect live load, and a
        disk-tier service exposes its `serve.diskcache.*` families."""
        import threading

        from repro.serve import PartitionService, ServiceConfig

        cfg = ServiceConfig(max_workers=1, warm_start=False,
                            cache_dir=str(tmp_path / "dc"))
        release = threading.Event()
        with PartitionService(cfg) as svc:
            import repro.serve.service as service_mod
            real = service_mod.part_graph

            def gated(*args, **kwargs):
                release.wait(5.0)
                return real(*args, **kwargs)

            service_mod.part_graph = gated
            try:
                f1 = svc.submit(mesh, 4, seed=2)
                f2 = svc.submit(mesh, 5, seed=2)   # queued behind f1
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    st = svc.stats()
                    if st["serve.inflight"] == 1 and st["serve.queue_depth"] == 1:
                        break
                    time.sleep(0.01)
                else:
                    raise AssertionError(f"gauges never converged: {st}")
            finally:
                release.set()
                service_mod.part_graph = real
            f1.result()
            f2.result()
            st = svc.stats()
            assert st["serve.inflight"] == 0 and st["serve.queue_depth"] == 0
            families = parse_exposition(svc.metrics_text())
        assert families["repro_serve_diskcache_entries"]["type"] == "gauge"
        assert families["repro_serve_diskcache_stores"]["type"] == "counter"

    def test_level_record_defaults(self):
        rec = LevelRecord(phase="refine", direction="uncoarsening",
                          level=0, nvtxs=10, nedges=20)
        assert rec.moves == 0 and rec.cut is None
        assert LevelRecord.from_dict(rec.to_dict()) == rec
