"""Robustness contract of the disk-backed result cache.

Every way an on-disk entry can be damaged -- truncated, garbled,
renamed under the wrong digest, half-written -- must degrade to a plain
*miss* (counter bumped, file quarantined), never a crash or a wrong
answer.  And a fresh service pointed at a populated directory must serve
a **bit-identical** hit without recomputing.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.graph import mesh_like
from repro.partition import PartitionOptions, part_graph
from repro.serve import DiskCache, PartitionService, ServiceConfig
from repro.serve.key import request_key
from repro.weights import type1_region_weights


def make_graph(n=200, ncon=2, seed=0):
    g = mesh_like(n, seed=seed)
    if ncon > 1:
        g = g.with_vwgt(type1_region_weights(g, ncon, seed=seed + 1))
    return g


def keyed_result(graph, nparts, seed=0):
    """A (key, result) pair the way the service produces them."""
    key, options = request_key(graph, nparts,
                               options=PartitionOptions(seed=seed))
    return key, part_graph(graph, nparts, options=options)


def same_result(a, b) -> bool:
    return (
        np.array_equal(a.part, b.part)
        and a.edgecut == b.edgecut
        and np.array_equal(a.imbalance, b.imbalance)
        and a.feasible == b.feasible
        and a.nparts == b.nparts
        and a.method == b.method
    )


def entry_paths(directory):
    return sorted(glob.glob(os.path.join(str(directory), "*.npz")))


# --------------------------------------------------------------------- #
# Round trip + durability
# --------------------------------------------------------------------- #


class TestDiskCacheRoundTrip:
    def test_put_get_bit_identical(self, tmp_path):
        g = make_graph()
        key, result = keyed_result(g, 4)
        cache = DiskCache(tmp_path)
        assert cache.put(key, result)
        got = cache.get(key)
        assert got is not None and same_result(got, result)
        assert got.options is not None
        assert got.options.seed == key.seed
        assert not got.part.flags.writeable
        assert cache.counters()["serve.diskcache.hits"] == 1
        assert cache.counters()["serve.diskcache.stores"] == 1

    def test_restart_sees_existing_entries(self, tmp_path):
        g = make_graph()
        key, result = keyed_result(g, 4)
        DiskCache(tmp_path).put(key, result)
        reopened = DiskCache(tmp_path)  # fresh instance, same directory
        assert len(reopened) == 1 and reopened.nbytes > 0
        got = reopened.get(key)
        assert got is not None and same_result(got, result)

    def test_uncacheable_key_not_stored(self, tmp_path):
        g = make_graph()
        key, options = request_key(g, 4)  # seed=None: nondeterministic
        assert not key.cacheable
        cache = DiskCache(tmp_path)
        assert not cache.put(key, part_graph(g, 4, options=options))
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.counters()["serve.diskcache.misses"] == 1

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        g = make_graph()
        cache = DiskCache(tmp_path)
        for k in (2, 3, 4, 5):
            key, result = keyed_result(g, k)
            assert cache.put(key, result)
        stray = [p for p in os.listdir(tmp_path)
                 if not p.endswith(".npz")]
        assert stray == []


# --------------------------------------------------------------------- #
# Corruption -> miss + quarantine
# --------------------------------------------------------------------- #


class TestCorruptionTolerance:
    def _one_entry(self, tmp_path):
        g = make_graph()
        key, result = keyed_result(g, 4)
        cache = DiskCache(tmp_path)
        assert cache.put(key, result)
        (path,) = entry_paths(tmp_path)
        return cache, key, path

    def _assert_quarantined(self, cache, key, path):
        assert cache.get(key) is None
        assert cache.counters()["serve.diskcache.corrupt"] == 1
        assert cache.counters()["serve.diskcache.misses"] == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # quarantined entries are never retried: still a plain miss
        assert cache.get(key) is None
        assert cache.counters()["serve.diskcache.corrupt"] == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache, key, path = self._one_entry(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        self._assert_quarantined(cache, key, path)

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache, key, path = self._one_entry(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"this is not an npz archive at all")
        self._assert_quarantined(cache, key, path)

    def test_empty_partial_write_is_a_miss(self, tmp_path):
        cache, key, path = self._one_entry(tmp_path)
        with open(path, "wb"):
            pass  # zero bytes: the moment after open(2) in a torn write
        self._assert_quarantined(cache, key, path)

    def test_entry_under_wrong_digest_is_a_miss(self, tmp_path):
        """A cross-copied/renamed file cannot impersonate another request:
        the digest echoed inside the payload must match the file name."""
        g = make_graph()
        key_a, result = keyed_result(g, 4)
        key_b, _ = keyed_result(g, 5)
        cache = DiskCache(tmp_path)
        assert cache.put(key_a, result)
        os.replace(os.path.join(tmp_path, key_a.digest + ".npz"),
                   os.path.join(tmp_path, key_b.digest + ".npz"))
        cache = DiskCache(tmp_path)  # rescan the tampered directory
        assert cache.get(key_b) is None
        assert cache.counters()["serve.diskcache.corrupt"] == 1


# --------------------------------------------------------------------- #
# Byte budget / LRU eviction
# --------------------------------------------------------------------- #


class TestByteBudget:
    def test_oversized_payload_not_admitted(self, tmp_path):
        g = make_graph()
        key, result = keyed_result(g, 4)
        cache = DiskCache(tmp_path, max_bytes=64)
        assert not cache.put(key, result)
        assert len(cache) == 0 and entry_paths(tmp_path) == []

    def test_lru_eviction_respects_get_recency(self, tmp_path):
        g = make_graph()
        probe = DiskCache(tmp_path / "probe")
        key, result = keyed_result(g, 2)
        probe.put(key, result)
        entry_size = probe.nbytes

        cache = DiskCache(tmp_path / "real",
                          max_bytes=int(entry_size * 2.5))
        key_a, res_a = keyed_result(g, 2)
        key_b, res_b = keyed_result(g, 3)
        key_c, res_c = keyed_result(g, 4)
        assert cache.put(key_a, res_a) and cache.put(key_b, res_b)
        # age both entries, then touch A: a *get* refreshes recency
        for k in (key_a, key_b):
            p = os.path.join(cache.directory, k.digest + ".npz")
            os.utime(p, (1_000_000.0, 1_000_000.0))
        assert cache.get(key_a) is not None
        assert cache.put(key_c, res_c)  # over budget: evict oldest = B
        assert cache.counters()["serve.diskcache.evictions"] == 1
        assert cache.get(key_b) is None          # evicted
        assert cache.get(key_a) is not None      # kept: recently read
        assert cache.get(key_c) is not None      # kept: just written
        assert cache.nbytes <= cache.max_bytes

    def test_mtime_recency_survives_restart(self, tmp_path):
        g = make_graph()
        cache = DiskCache(tmp_path)
        key_a, res_a = keyed_result(g, 2)
        key_b, res_b = keyed_result(g, 3)
        cache.put(key_a, res_a)
        cache.put(key_b, res_b)
        # make A clearly the colder entry on disk
        path_a = os.path.join(str(tmp_path), key_a.digest + ".npz")
        os.utime(path_a, (1_000_000.0, 1_000_000.0))
        entry_size = cache.nbytes // 2

        reopened = DiskCache(tmp_path, max_bytes=int(entry_size * 2.5))
        key_c, res_c = keyed_result(g, 4)
        assert reopened.put(key_c, res_c)
        assert reopened.get(key_a) is None       # cold entry evicted
        assert reopened.get(key_b) is not None


# --------------------------------------------------------------------- #
# Service integration: restarts start warm
# --------------------------------------------------------------------- #


class TestServiceDiskTier:
    def test_restarted_service_serves_disk_hit_without_recompute(
            self, tmp_path):
        g = make_graph(240, 2)
        cfg = ServiceConfig(cache_dir=str(tmp_path), warm_start=False)
        with PartitionService(cfg) as svc:
            cold = svc.partition(g, 4, seed=7)
            assert svc.stats()["serve.diskcache.stores"] == 1

        with PartitionService(cfg) as fresh:  # simulated restart
            hit = fresh.partition(g, 4, seed=7)
            stats = fresh.stats()
        assert same_result(hit, cold)
        assert stats["serve.cold_computes"] == 0
        assert stats["serve.diskcache.hits"] == 1
        # the disk hit was promoted into the in-memory tier
        assert stats["serve.cache.entries"] == 1

    def test_corrupt_entry_recomputes_and_quarantines(self, tmp_path):
        g = make_graph(240, 2)
        cfg = ServiceConfig(cache_dir=str(tmp_path), warm_start=False)
        with PartitionService(cfg) as svc:
            cold = svc.partition(g, 4, seed=7)
        (path,) = entry_paths(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"\x00" * 16)

        with PartitionService(cfg) as fresh:
            again = fresh.partition(g, 4, seed=7)
            stats = fresh.stats()
        assert same_result(again, cold)  # recompute is deterministic
        assert stats["serve.cold_computes"] == 1
        assert stats["serve.diskcache.corrupt"] == 1
        assert os.path.exists(path + ".corrupt")

    def test_uncacheable_requests_never_touch_disk(self, tmp_path):
        g = make_graph(200, 1)
        cfg = ServiceConfig(cache_dir=str(tmp_path), warm_start=False)
        with PartitionService(cfg) as svc:
            svc.partition(g, 4)  # seed=None: nondeterministic
            assert svc.stats()["serve.diskcache.stores"] == 0
        assert entry_paths(tmp_path) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
