"""Unit tests for the lazy-deletion priority queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.refine import LazyMaxPQ


class TestLazyMaxPQ:
    def test_insert_pop_order(self):
        q = LazyMaxPQ()
        for k, p in [(1, 5.0), (2, 9.0), (3, 1.0)]:
            q.insert(k, p)
        assert q.pop() == (2, 9.0)
        assert q.pop() == (1, 5.0)
        assert q.pop() == (3, 1.0)
        assert q.pop() is None

    def test_len_tracks_live_keys(self):
        q = LazyMaxPQ()
        q.insert(1, 1.0)
        q.insert(2, 2.0)
        assert len(q) == 2
        q.remove(1)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_update_changes_priority(self):
        q = LazyMaxPQ()
        q.insert(1, 1.0)
        q.insert(2, 2.0)
        q.update(1, 10.0)
        assert q.pop() == (1, 10.0)

    def test_update_down(self):
        q = LazyMaxPQ()
        q.insert(1, 10.0)
        q.insert(2, 5.0)
        q.update(1, 1.0)
        assert q.pop() == (2, 5.0)

    def test_insert_existing_key_does_not_grow_len(self):
        q = LazyMaxPQ()
        q.insert(1, 1.0)
        q.insert(1, 2.0)
        assert len(q) == 1

    def test_remove_absent_key_noop(self):
        q = LazyMaxPQ()
        q.remove(42)
        assert len(q) == 0

    def test_remove_then_reinsert(self):
        q = LazyMaxPQ()
        q.insert(1, 5.0)
        q.remove(1)
        q.insert(1, 7.0)
        assert q.pop() == (1, 7.0)

    def test_contains_and_priority(self):
        q = LazyMaxPQ()
        q.insert(3, 4.5)
        assert 3 in q and 4 not in q
        assert q.priority(3) == 4.5
        assert q.priority(4) is None

    def test_peek_does_not_remove(self):
        q = LazyMaxPQ()
        q.insert(1, 1.0)
        assert q.peek() == (1, 1.0)
        assert len(q) == 1
        assert q.pop() == (1, 1.0)

    def test_ties_are_stable_keys(self):
        q = LazyMaxPQ()
        q.insert(5, 1.0)
        q.insert(3, 1.0)
        popped = {q.pop()[0], q.pop()[0]}
        assert popped == {3, 5}

    def test_clear(self):
        q = LazyMaxPQ()
        for i in range(10):
            q.insert(i, float(i))
        q.clear()
        assert len(q) == 0 and q.pop() is None

    def test_stress_against_reference(self):
        rng = np.random.default_rng(0)
        q = LazyMaxPQ()
        ref: dict[int, float] = {}
        for _ in range(3000):
            op = rng.integers(4)
            k = int(rng.integers(50))
            if op == 0:
                p = float(rng.integers(100))
                q.insert(k, p)
                ref[k] = p
            elif op == 1:
                q.remove(k)
                ref.pop(k, None)
            elif op == 2 and ref:
                got = q.pop()
                exp_key = max(ref, key=lambda kk: (ref[kk], ))
                assert got is not None
                assert got[1] == max(ref.values())
                ref.pop(got[0])
            else:
                assert len(q) == len(ref)
        assert len(q) == len(ref)
