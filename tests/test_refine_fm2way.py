"""Unit tests for multi-constraint 2-way FM refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import from_edges, grid_2d, mesh_like
from repro.refine import TwoWayState, balance_2way, edge_cut, fm2way_refine
from repro.weights import max_imbalance, random_vwgt, type1_region_weights


def _state_invariants(state: TwoWayState):
    """Recompute everything from scratch and compare with tracked values."""
    g, where = state.graph, state.where
    assert state.cut == edge_cut(g, where)
    pw0 = state.relw[where == 0].sum(axis=0)
    pw1 = state.relw[where == 1].sum(axis=0)
    assert np.allclose(state.pw[0], pw0, atol=1e-9)
    assert np.allclose(state.pw[1], pw1, atol=1e-9)
    from repro.refine import compute_2way_degrees

    id_, ed = compute_2way_degrees(g, where)
    assert np.array_equal(state.id_, id_)
    assert np.array_equal(state.ed, ed)


class TestTwoWayState:
    def test_initial_invariants(self, mesh500):
        rng = np.random.default_rng(0)
        where = rng.integers(0, 2, 500)
        state = TwoWayState(mesh500, where)
        _state_invariants(state)

    def test_move_maintains_invariants(self, mesh500):
        rng = np.random.default_rng(1)
        where = rng.integers(0, 2, 500)
        state = TwoWayState(mesh500, where)
        for v in rng.integers(0, 500, size=50).tolist():
            state.move(v)
        _state_invariants(state)

    def test_move_is_involutive(self, mesh500):
        rng = np.random.default_rng(2)
        where = rng.integers(0, 2, 500)
        state = TwoWayState(mesh500, where.copy())
        cut0 = state.cut
        state.move(7)
        state.move(7)
        assert state.cut == cut0
        assert state.where[7] == where[7]

    def test_rejects_bad_parts(self, mesh500):
        with pytest.raises(PartitionError):
            TwoWayState(mesh500, np.full(500, 2))

    def test_rejects_bad_fracs(self, mesh500):
        with pytest.raises(PartitionError):
            TwoWayState(mesh500, np.zeros(500, dtype=int), target_fracs=(1.0, -0.5))

    def test_vacuous_constraint_handled(self, mesh500):
        vw = np.ones((500, 2), dtype=np.int64)
        vw[:, 1] = 0  # zero-total constraint in this subgraph
        g = mesh500.with_vwgt(vw)
        state = TwoWayState(g, np.zeros(500, dtype=np.int64))
        assert np.all(state.relw[:, 1] == 0)


class TestBalance2Way:
    def test_balances_skewed_start(self, mesh2000):
        where = np.zeros(2000, dtype=np.int64)
        where[:100] = 1  # 95/5 split
        state = TwoWayState(mesh2000, where, ubvec=1.05)
        assert not state.feasible()
        moves = balance_2way(state)
        assert moves > 0
        assert state.feasible()
        _state_invariants(state)

    def test_noop_when_feasible(self, mesh500):
        where = (np.arange(500) % 2).astype(np.int64)
        state = TwoWayState(mesh500, where)
        assert balance_2way(state) == 0

    def test_multiconstraint_balance(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 3, seed=0))
        where = np.zeros(2000, dtype=np.int64)
        where[:400] = 1
        state = TwoWayState(g, where, ubvec=1.10)
        balance_2way(state)
        assert state.feasible()

    def test_strictly_decreasing_objective_terminates(self, mesh500):
        # Even with an unreachable tolerance target, the loop must stop.
        vw = np.zeros((500, 1), dtype=np.int64)
        vw[0, 0] = 100  # one giant vertex: perfect balance impossible
        g = mesh500.with_vwgt(vw + 1)
        where = np.zeros(500, dtype=np.int64)
        state = TwoWayState(g, where, ubvec=1.01)
        balance_2way(state)  # must terminate
        _state_invariants(state)


class TestFM:
    def test_improves_random_split_on_grid(self):
        g = grid_2d(16, 16)
        rng = np.random.default_rng(0)
        where = rng.integers(0, 2, 256)
        stats = fm2way_refine(g, where, seed=1)
        assert stats.final_cut < stats.initial_cut
        assert stats.final_cut == edge_cut(g, where)
        # A 16x16 grid bisection can reach cut 16; FM from random should
        # land well under 60.
        assert stats.final_cut <= 60
        assert stats.feasible

    def test_respects_tolerance(self, mesh2000):
        rng = np.random.default_rng(1)
        where = rng.integers(0, 2, 2000)
        fm2way_refine(mesh2000, where, ubvec=1.03, seed=2)
        assert max_imbalance(mesh2000.vwgt, where, 2) <= 1.03 + 1e-9

    def test_multiconstraint_feasible(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 3, seed=3))
        rng = np.random.default_rng(4)
        where = rng.integers(0, 2, 2000)
        stats = fm2way_refine(g, where, ubvec=1.05, seed=5)
        assert stats.feasible
        assert stats.final_cut < stats.initial_cut

    def test_never_worsens_perfect_cut(self):
        # Two cliques joined by one edge, already optimally split.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j) for i in range(4, 8) for j in range(i + 1, 8)]
        edges += [(0, 4)]
        g = from_edges(8, edges)
        where = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        stats = fm2way_refine(g, where, seed=0)
        assert stats.final_cut == 1

    def test_asymmetric_target(self, mesh2000):
        rng = np.random.default_rng(6)
        where = rng.integers(0, 2, 2000)
        fm2way_refine(mesh2000, where, target_fracs=(0.75, 0.25), ubvec=1.05, seed=7)
        pw = mesh2000.vwgt[where == 0].sum() / mesh2000.vwgt.sum()
        assert 0.70 <= pw <= 0.75 * 1.05 + 0.01

    def test_unbalanced_start_ends_feasible(self, mesh2000):
        where = np.zeros(2000, dtype=np.int64)
        where[:10] = 1
        stats = fm2way_refine(mesh2000, where, seed=8)
        assert stats.feasible

    def test_deterministic(self, mesh500):
        rng = np.random.default_rng(9)
        base = rng.integers(0, 2, 500)
        a, b = base.copy(), base.copy()
        sa = fm2way_refine(mesh500, a, seed=10)
        sb = fm2way_refine(mesh500, b, seed=10)
        assert sa.final_cut == sb.final_cut
        assert np.array_equal(a, b)

    def test_stats_counts(self, mesh500):
        rng = np.random.default_rng(11)
        where = rng.integers(0, 2, 500)
        stats = fm2way_refine(mesh500, where, npasses=3, seed=12)
        assert 1 <= stats.passes <= 3
        assert stats.moves >= 0
