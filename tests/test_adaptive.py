"""Unit tests for adaptive repartitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    RepartitionResult,
    adaptive_repartition,
    migration_stats,
    migration_volume,
    refine_partition,
)
from repro.errors import PartitionError
from repro.partition import part_graph
from repro.weights import max_imbalance, type1_region_weights


class TestMigration:
    def test_volume_zero_when_identical(self, mesh500):
        part = np.arange(500) % 4
        assert migration_volume(mesh500.vwgt, part, part) == 0

    def test_volume_counts_moved_weight(self):
        vwgt = np.array([[3], [5], [7]])
        old = np.array([0, 0, 1])
        new = np.array([0, 1, 1])
        assert migration_volume(vwgt, old, new) == 5

    def test_stats_fields(self, mesh500):
        old = np.arange(500) % 4
        new = old.copy()
        new[:50] = (new[:50] + 1) % 4
        st = migration_stats(mesh500.vwgt, old, new)
        assert st["moved_vertices"] == 50
        assert st["moved_fraction"] == pytest.approx(0.1)
        assert st["volume"] == 50  # unit weights

    def test_misaligned_rejected(self, mesh500):
        with pytest.raises(PartitionError):
            migration_volume(mesh500.vwgt, np.zeros(3), np.zeros(500))

    def test_stats_json_round_trip(self, mesh500):
        # moved_weight must be plain ints (not np.int64) so the stats dict
        # survives json.dumps -- the serve layer ships it over the wire.
        import json

        vw = np.ones((500, 3), dtype=np.int64)
        vw[:, 1] = 2
        vw[:, 2] = 7
        old = np.arange(500) % 4
        new = old.copy()
        new[:25] = (new[:25] + 2) % 4
        st = migration_stats(vw, old, new)
        assert st["moved_weight"] == [25, 50, 175]
        assert all(type(x) is int for x in st["moved_weight"])
        assert json.loads(json.dumps(st)) == st


class TestRefinePartition:
    def test_restores_balance_after_weight_change(self, mesh2000):
        # Partition under uniform weights, then concentrate weight.
        base = part_graph(mesh2000, 8, seed=0)
        vw = np.ones((2000, 1), dtype=np.int64)
        vw[:400] = 5  # weight concentrates in one corner
        g = mesh2000.with_vwgt(vw)
        assert max_imbalance(vw, base.part, 8) > 1.05
        res = refine_partition(g, base.part, 8, ubvec=1.05, seed=1)
        assert res.feasible
        assert res.strategy == "refine"

    def test_does_not_mutate_old_part(self, mesh500):
        old = np.arange(500) % 4
        keep = old.copy()
        refine_partition(mesh500, old, 4, seed=2)
        assert np.array_equal(old, keep)

    def test_low_migration_when_already_good(self, mesh2000):
        base = part_graph(mesh2000, 8, seed=3)
        res = refine_partition(mesh2000, base.part, 8, seed=4)
        assert res.migration["moved_fraction"] <= 0.10
        assert res.edgecut <= base.edgecut * 1.05

    def test_input_validation(self, mesh500):
        with pytest.raises(PartitionError):
            refine_partition(mesh500, np.zeros(3), 4)
        with pytest.raises(PartitionError):
            refine_partition(mesh500, np.full(500, 9), 4)

    def test_multiconstraint(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 3, seed=5))
        base = part_graph(mesh2000, 8, seed=6)  # unit-weight partition
        res = refine_partition(g, base.part, 8, ubvec=1.10, seed=7)
        assert res.max_imbalance <= 1.12


class TestAdaptiveRepartition:
    def test_feasible_beats_infeasible(self, mesh2000):
        vw = np.ones((2000, 1), dtype=np.int64)
        vw[:500] = 4
        g = mesh2000.with_vwgt(vw)
        old = part_graph(mesh2000, 8, seed=8).part
        res = adaptive_repartition(g, old, 8, seed=9)
        assert isinstance(res, RepartitionResult)
        assert res.feasible

    def test_large_itr_prefers_local_refinement(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=10))
        old = part_graph(g, 8, seed=11).part
        # Perturb slightly: weights unchanged -> local refinement moves little.
        res = adaptive_repartition(g, old, 8, itr=10.0, seed=12)
        assert res.strategy == "refine"
        assert res.migration["moved_fraction"] <= 0.2

    def test_summary_string(self, mesh500):
        old = np.arange(500) % 4
        res = adaptive_repartition(mesh500, old, 4, seed=13)
        assert "repartition[" in res.summary()

    def test_deterministic(self, mesh500):
        old = np.arange(500) % 4
        a = adaptive_repartition(mesh500, old, 4, seed=14)
        b = adaptive_repartition(mesh500, old, 4, seed=14)
        assert np.array_equal(a.part, b.part)
        assert a.strategy == b.strategy
