"""Unit tests for the baseline partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    as_single_constraint,
    bfs_partition,
    block_partition,
    fiedler_vector,
    part_graph_single,
    random_partition,
    spectral_bisection,
    spectral_recursive,
)
from repro.errors import PartitionError, WeightError
from repro.graph import grid_2d, mesh_like, path_graph
from repro.metrics import edge_cut
from repro.weights import max_imbalance, random_vwgt


class TestSingleConstraint:
    def test_sum_mode(self, mesh500):
        g = mesh500.with_vwgt(random_vwgt(500, 3, seed=0))
        sc = as_single_constraint(g, "sum")
        assert sc.ncon == 1
        assert np.array_equal(sc.vwgt[:, 0], g.vwgt.sum(axis=1))

    def test_first_mode(self, mesh500):
        g = mesh500.with_vwgt(random_vwgt(500, 3, seed=1))
        sc = as_single_constraint(g, "first")
        assert np.array_equal(sc.vwgt[:, 0], g.vwgt[:, 0])

    def test_unit_mode(self, mesh500):
        sc = as_single_constraint(mesh500, "unit")
        assert np.all(sc.vwgt == 1)

    def test_bad_mode(self, mesh500):
        with pytest.raises(WeightError):
            as_single_constraint(mesh500, "median")

    def test_part_graph_single_runs(self, mesh2000):
        g = mesh2000.with_vwgt(random_vwgt(2000, 2, seed=2))
        res = part_graph_single(g, 4, seed=3)
        assert res.ncon == 1
        assert res.feasible
        assert res.part.shape == (2000,)


class TestTrivialBaselines:
    def test_random_counts_balanced(self, mesh500):
        part = random_partition(mesh500, 7, seed=0)
        sizes = np.bincount(part, minlength=7)
        assert sizes.max() - sizes.min() <= 1

    def test_random_deterministic(self, mesh500):
        assert np.array_equal(random_partition(mesh500, 4, seed=1),
                              random_partition(mesh500, 4, seed=1))

    def test_block_contiguous(self, mesh500):
        part = block_partition(mesh500, 4)
        assert np.all(np.diff(part) >= 0)
        sizes = np.bincount(part, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_bfs_contiguous_parts(self, mesh500):
        part = bfs_partition(mesh500, 6, seed=2)
        assert set(np.unique(part)) == set(range(6))

    def test_nparts_checks(self, mesh500):
        for fn in (lambda: random_partition(mesh500, 0),
                   lambda: block_partition(mesh500, 0),
                   lambda: bfs_partition(mesh500, 501)):
            with pytest.raises(PartitionError):
                fn()

    def test_multilevel_beats_trivial_baselines(self, mesh2000):
        from repro.partition import part_graph

        res = part_graph(mesh2000, 8, seed=3)
        rnd_cut = edge_cut(mesh2000, random_partition(mesh2000, 8, seed=4))
        bfs_cut = edge_cut(mesh2000, bfs_partition(mesh2000, 8, seed=5))
        assert res.edgecut < bfs_cut
        assert res.edgecut < 0.5 * rnd_cut


class TestSpectral:
    def test_fiedler_sign_structure_on_path(self):
        g = path_graph(20)
        fv = fiedler_vector(g)
        # The Fiedler vector of a path is monotone (up to sign).
        d = np.diff(fv)
        assert np.all(d >= -1e-9) or np.all(d <= 1e-9)

    def test_bisection_grid(self):
        g = grid_2d(12, 12)
        where = spectral_bisection(g)
        sizes = np.bincount(where, minlength=2)
        assert abs(sizes[0] - sizes[1]) <= 12
        assert edge_cut(g, where) <= 3 * 12

    def test_recursive_four_parts(self):
        g = grid_2d(16, 16)
        part = spectral_recursive(g, 4)
        assert set(np.unique(part)) == set(range(4))
        assert max_imbalance(g.vwgt, part, 4) <= 1.25
        assert edge_cut(g, part) <= 4 * 32

    def test_large_graph_uses_sparse_path(self):
        g = mesh_like(600, seed=0)
        fv = fiedler_vector(g)
        assert fv.shape == (600,)

    def test_errors(self):
        g = path_graph(1)
        with pytest.raises(PartitionError):
            fiedler_vector(g)
        with pytest.raises(PartitionError):
            spectral_recursive(path_graph(3), 0)
        with pytest.raises(PartitionError):
            spectral_recursive(path_graph(3), 4)

    def test_multilevel_competitive_with_spectral(self):
        from repro.partition import part_graph

        g = mesh_like(1000, seed=1)
        ml = part_graph(g, 4, method="recursive", seed=2)
        sp_part = spectral_recursive(g, 4)
        assert ml.edgecut <= 1.4 * max(edge_cut(g, sp_part), 1)
