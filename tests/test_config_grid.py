"""Configuration-grid integration tests: every combination of driver,
matching scheme and sweep policy must produce a valid, feasible partition
on a representative multi-constraint instance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import mesh_like
from repro.metrics import edge_cut
from repro.partition import PartitionOptions, part_graph
from repro.refine.kwayref import KWayState
from repro.weights import type1_region_weights

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def instance():
    g = mesh_like(1200, seed=5)
    return g.with_vwgt(type1_region_weights(g, 2, seed=6))


@pytest.mark.parametrize("method", ["kway", "recursive"])
@pytest.mark.parametrize("matching", ["hem", "bem", "rm", "fhem"])
@pytest.mark.parametrize("policy", ["greedy", "priority"])
def test_every_configuration_valid(instance, method, matching, policy):
    res = part_graph(
        instance, 6,
        method=method,
        options=PartitionOptions(seed=1, matching=matching, kway_policy=policy),
    )
    assert res.part.shape == (1200,)
    assert set(np.unique(res.part)) == set(range(6))
    assert res.edgecut == edge_cut(instance, res.part)
    assert res.max_imbalance <= 1.12  # 5% target with small slack
    assert np.all(np.bincount(res.part, minlength=6) > 0)


# --------------------------------------------------------------------- #
# KWayState property tests
# --------------------------------------------------------------------- #

@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=25, **COMMON)
def test_kway_state_consistent_under_random_moves(seed, nparts):
    g = mesh_like(120, seed=3)
    rng = np.random.default_rng(seed)
    where = rng.integers(0, nparts, 120)
    state = KWayState(g, where, nparts, ubvec=1.5)
    for _ in range(40):
        v = int(rng.integers(120))
        d = int(rng.integers(nparts))
        # balance_delta must equal the actual change in the objective.
        before = state.balance_obj()
        predicted = state.balance_delta(v, d)
        state.move(v, d)
        after = state.balance_obj()
        assert after - before == pytest.approx(predicted, abs=1e-9)
    # Tracked aggregates match recomputation.
    pw = np.zeros_like(state.pw)
    for c in range(state.relw.shape[1]):
        pw[:, c] = np.bincount(state.where, weights=state.relw[:, c],
                               minlength=nparts)
    assert np.allclose(state.pw, pw, atol=1e-9)
    assert np.array_equal(state.counts,
                          np.bincount(state.where, minlength=nparts))


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, **COMMON)
def test_dest_fits_agrees_with_caps(seed):
    g = mesh_like(80, seed=4)
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 4, 80)
    state = KWayState(g, where, 4, ubvec=1.2)
    for _ in range(30):
        v = int(rng.integers(80))
        d = int(rng.integers(4))
        fits = state.dest_fits(v, d)
        manual = bool(np.all(state.pw[d] + state.relw[v]
                             <= state.caps[d] + 1e-9))
        assert fits == manual
