"""Integration tests for the multilevel drivers and the public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import delaunay_mesh, from_edges, grid_2d, mesh_like
from repro.metrics import edge_cut
from repro.partition import (
    PartitionOptions,
    part_graph,
    partition_kway,
    partition_recursive,
)
from repro.weights import max_imbalance, type1_region_weights, type2_multiphase
from repro.weights.generators import coactivity_edge_weights


class TestOptions:
    def test_defaults(self):
        opts = PartitionOptions()
        assert opts.matching == "hem"
        assert opts.ubvec == 1.05

    def test_with_(self):
        opts = PartitionOptions().with_(seed=3, matching="rm")
        assert opts.seed == 3 and opts.matching == "rm"

    def test_validation(self):
        with pytest.raises(PartitionError):
            PartitionOptions(matching="xxx")
        with pytest.raises(PartitionError):
            PartitionOptions(coarsen_to=1)
        with pytest.raises(PartitionError):
            PartitionOptions(init_ntries=0)


class TestRecursive:
    def test_grid_quality(self):
        g = grid_2d(24, 24)
        part = partition_recursive(g, 4, PartitionOptions(seed=0))
        assert edge_cut(g, part) <= 2.2 * 48  # within ~2.2x of the ideal 2 cuts
        assert max_imbalance(g.vwgt, part, 4) <= 1.05 + 1e-9

    def test_nonpow2_parts(self, mesh2000):
        part = partition_recursive(mesh2000, 5, PartitionOptions(seed=1))
        sizes = np.bincount(part, minlength=5)
        assert np.all(sizes > 0)
        assert max_imbalance(mesh2000.vwgt, part, 5) <= 1.06

    def test_one_part(self, mesh500):
        part = partition_recursive(mesh500, 1, PartitionOptions(seed=0))
        assert np.all(part == 0)

    def test_nparts_exceeds_vertices(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(PartitionError):
            partition_recursive(g, 4)

    def test_multiconstraint_balance(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 3, seed=2))
        part = partition_recursive(g, 8, PartitionOptions(seed=3))
        assert max_imbalance(g.vwgt, part, 8) <= 1.10  # 5% target, small slack

    def test_deterministic(self, mesh500):
        a = partition_recursive(mesh500, 4, PartitionOptions(seed=42))
        b = partition_recursive(mesh500, 4, PartitionOptions(seed=42))
        assert np.array_equal(a, b)


class TestKWay:
    def test_grid_quality(self):
        g = grid_2d(24, 24)
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        assert edge_cut(g, part) <= 2.5 * 48
        assert max_imbalance(g.vwgt, part, 4) <= 1.05 + 1e-9

    def test_all_parts_nonempty(self, mesh2000):
        part = partition_kway(mesh2000, 16, PartitionOptions(seed=1))
        assert np.all(np.bincount(part, minlength=16) > 0)

    def test_multiconstraint_feasible(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 4, seed=4))
        part = partition_kway(g, 8, PartitionOptions(seed=5))
        assert max_imbalance(g.vwgt, part, 8) <= 1.10

    def test_small_graph_skips_coarsening(self):
        g = mesh_like(120, seed=6)
        part = partition_kway(g, 4, PartitionOptions(seed=7))
        assert max_imbalance(g.vwgt, part, 4) <= 1.06

    def test_one_part(self, mesh500):
        assert np.all(partition_kway(mesh500, 1, PartitionOptions(seed=0)) == 0)

    def test_deterministic(self, mesh500):
        a = partition_kway(mesh500, 8, PartitionOptions(seed=9))
        b = partition_kway(mesh500, 8, PartitionOptions(seed=9))
        assert np.array_equal(a, b)


class TestPartGraphAPI:
    def test_result_fields(self, mesh500):
        res = part_graph(mesh500, 4, seed=0)
        assert res.nparts == 4
        assert res.ncon == 1
        assert res.part.shape == (500,)
        assert res.edgecut == edge_cut(mesh500, res.part)
        assert res.imbalance.shape == (1,)
        assert res.max_imbalance == res.imbalance.max()
        assert res.part_sizes().sum() == 500
        assert "k=4" in res.summary()

    def test_method_selection(self, mesh500):
        r1 = part_graph(mesh500, 4, method="recursive", seed=1)
        r2 = part_graph(mesh500, 4, method="kway", seed=1)
        assert r1.method == "recursive" and r2.method == "kway"
        with pytest.raises(PartitionError):
            part_graph(mesh500, 4, method="magic")

    def test_kwargs_build_options(self, mesh500):
        res = part_graph(mesh500, 4, seed=2, ubvec=1.2, matching="rm")
        assert res.options.matching == "rm"
        assert res.feasible

    def test_options_object_plus_kwargs(self, mesh500):
        opts = PartitionOptions(matching="bem")
        res = part_graph(mesh500, 2, options=opts, seed=3)
        assert res.options.matching == "bem"
        assert res.options.seed == 3

    def test_empty_graph_rejected(self):
        from repro.graph import Graph

        with pytest.raises(PartitionError):
            part_graph(Graph([0], []), 2)

    def test_ubvec_vector(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=6))
        res = part_graph(g, 4, ubvec=[1.05, 1.40], seed=7)
        assert res.imbalance[0] <= 1.12
        assert res.imbalance[1] <= 1.45

    def test_doctest_example(self):
        from repro.graph import grid_2d as gg

        res = part_graph(gg(16, 16), 4, seed=0)
        assert res.feasible


class TestEndToEndQuality:
    """The headline behaviours the paper reports, at test scale."""

    def test_mc_cut_within_factor_of_sc(self, mesh2000):
        """Multi-constraint cut should be within ~2x of single-constraint
        (the paper reports 1.2-1.5x at scale)."""
        from repro.baselines import part_graph_single

        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=8))
        mc = part_graph(g, 8, method="recursive", seed=9)
        sc = part_graph_single(g, 8, mode="unit", method="recursive", seed=9)
        assert mc.feasible
        assert mc.edgecut <= 2.5 * max(sc.edgecut, 1)

    def test_sc_partition_fails_mc_balance(self, mesh2000):
        """The motivating observation: a single-constraint partition is NOT
        balanced for the individual phases."""
        from repro.baselines import part_graph_single

        vw, act = type2_multiphase(mesh2000, 3, seed=10)
        g = mesh2000.with_vwgt(vw).with_adjwgt(
            np.maximum(coactivity_edge_weights(mesh2000, act), 0)
        )
        sc = part_graph_single(g, 8, mode="sum", seed=11)
        mc = part_graph(g, 8, seed=11)
        sc_imb = max_imbalance(g.vwgt, sc.part, 8)
        mc_imb = max_imbalance(g.vwgt, mc.part, 8)
        assert mc_imb <= 1.10
        assert sc_imb > mc_imb  # SC ignores per-phase balance

    def test_type2_mc_feasible(self, mesh2000):
        vw, act = type2_multiphase(mesh2000, 4, seed=12)
        g = mesh2000.with_vwgt(vw)
        res = part_graph(g, 8, seed=13)
        assert res.max_imbalance <= 1.12

    def test_disconnected_graph(self):
        a = mesh_like(300, seed=14)
        # Two disjoint copies.
        n = a.nvtxs
        xadj = np.concatenate([a.xadj, a.xadj[1:] + a.xadj[-1]])
        adjncy = np.concatenate([a.adjncy, a.adjncy + n])
        from repro.graph import Graph

        g = Graph(xadj, adjncy)
        res = part_graph(g, 4, seed=15)
        assert res.feasible
