"""Cross-module integration tests: the full pipelines a user would run.

Each test chains several subsystems and asserts the end-to-end contract,
not individual internals (those are covered by the unit tests).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.adaptive import adaptive_repartition
from repro.baselines import part_graph_single
from repro.graph import (
    load_npz,
    read_metis_graph,
    read_partition,
    save_npz,
    write_metis_graph,
    write_partition,
)
from repro.mesh import delaunay_triangulation, dual_graph, partition_mesh
from repro.metrics import PartitionReport, edge_cut
from repro.multiphase import from_type2
from repro.parallel import parallel_part_graph
from repro.partition import PartitionOptions, best_of, part_graph
from repro.viz import partition_svg
from repro.weights import max_imbalance, type2_multiphase
from repro.weights.generators import coactivity_edge_weights


class TestMeshToPartitionPipeline:
    def test_mesh_workload_partition_render(self):
        """mesh -> dual graph -> Type-2 workload -> MC partition -> SVG."""
        mesh = delaunay_triangulation(1200, seed=0)
        g = dual_graph(mesh)
        vw, act = type2_multiphase(g, 3, seed=1)
        g = g.with_vwgt(vw).with_adjwgt(coactivity_edge_weights(g, act))

        res = part_graph(g, 6, seed=2)
        assert res.feasible
        svg = partition_svg(g, res.part)
        assert svg.count("<g fill=") == 6

    def test_mesh_level_multiphase(self):
        """Element weights from a multi-phase model drive partition_mesh."""
        mesh = delaunay_triangulation(900, seed=3)
        g = dual_graph(mesh)
        sim = from_type2(g, 2, seed=4)
        mp = partition_mesh(mesh, 4, element_weights=sim.vwgt(), seed=5)
        assert mp.result.feasible
        assert sim.efficiency(mp.element_part, 4) > 0.85


class TestFileRoundtripPipeline:
    def test_text_and_binary_roundtrip_same_partition(self, tmp_path, mesh500):
        """Partitioning the graph after a text or binary IO roundtrip gives
        identical results (formats are lossless)."""
        text = tmp_path / "g.graph"
        binary = tmp_path / "g.npz"
        write_metis_graph(mesh500, text)
        save_npz(mesh500, binary)

        g_text = read_metis_graph(text)
        g_bin = load_npz(binary)
        a = part_graph(g_text, 4, seed=0)
        b = part_graph(g_bin, 4, seed=0)
        assert np.array_equal(a.part, b.part)

    def test_partition_file_reevaluation(self, tmp_path, mesh2000):
        res = part_graph(mesh2000, 8, seed=1)
        p = tmp_path / "m.part"
        write_partition(res.part, p)
        back = read_partition(p, 2000)
        rep = PartitionReport.from_partition(mesh2000, back, 8)
        assert rep.edgecut == res.edgecut
        assert rep.max_imbalance == pytest.approx(res.max_imbalance)


class TestDynamicPipeline:
    def test_partition_then_adapt_then_render(self, mesh2000):
        vw0, _ = type2_multiphase(mesh2000, 2, seed=6)
        g0 = mesh2000.with_vwgt(vw0)
        base = part_graph(g0, 8, seed=7)

        vw1, _ = type2_multiphase(mesh2000, 2, seed=8)  # drifted activity
        g1 = mesh2000.with_vwgt(vw1)
        res = adaptive_repartition(g1, base.part, 8, seed=9)
        assert res.feasible
        assert res.migration["moved_fraction"] < 1.0


class TestSerialParallelAgreement:
    def test_parallel_matches_serial_quality_on_multiconstraint(self, mesh2000):
        vw, _ = type2_multiphase(mesh2000, 3, seed=10)
        g = mesh2000.with_vwgt(vw)
        serial = part_graph(g, 8, seed=11)
        par = parallel_part_graph(g, 8, 4, options=PartitionOptions(seed=11))
        assert par.feasible and serial.feasible
        assert par.edgecut <= 1.6 * serial.edgecut


class TestEnsembleVsSingleSeed:
    def test_best_of_never_worse_than_component_runs(self, mesh2000):
        ens = best_of(mesh2000, 8, nseeds=3, seed=12)
        assert ens.best.edgecut <= min(ens.cuts)
        assert ens.best.edgecut <= max(ens.cuts)


class TestMotivationEndToEnd:
    def test_full_story(self, mesh2000):
        """The complete paper narrative on one graph: the SC baseline
        balances total work but not phases; the MC partitioner balances
        every phase within 5% at a bounded cut premium."""
        vw, act = type2_multiphase(mesh2000, 4, seed=13)
        g = mesh2000.with_vwgt(vw).with_adjwgt(
            coactivity_edge_weights(mesh2000, act)
        )
        sc = part_graph_single(g, 8, mode="sum", seed=14)
        mc = part_graph(g, 8, seed=14)
        assert max_imbalance(g.vwgt, mc.part, 8) <= 1.06
        assert max_imbalance(g.vwgt, sc.part, 8) > 1.06
        assert mc.edgecut <= 3.0 * max(sc.edgecut, 1)
        assert edge_cut(g, mc.part) == mc.edgecut
