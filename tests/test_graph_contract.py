"""Unit tests for graph contraction — the invariants here are the heart of
the multilevel paradigm: total vertex weight per constraint and total
exposed + internal edge weight are conserved."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import contract, from_edges, grid_2d
from repro.graph.ops import bfs_regions
from repro.weights import random_vwgt


class TestContractBasics:
    def test_pair_contraction(self):
        # Path 0-1-2-3, contract {0,1} and {2,3}.
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[5, 7, 9])
        c = contract(g, [0, 0, 1, 1])
        assert c.nvtxs == 2
        assert c.nedges == 1
        assert c.total_adjwgt() == 7  # internal edges 5 and 9 vanish
        assert c.vwgt[:, 0].tolist() == [2, 2]

    def test_parallel_edges_merged(self):
        # Square 0-1-2-3-0; contract {0,3} and {1,2} -> double edge merged.
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        c = contract(g, [0, 1, 1, 0])
        assert c.nvtxs == 2
        assert c.nedges == 1
        assert c.total_adjwgt() == 2

    def test_identity_contraction(self, small_grid):
        c = contract(small_grid, np.arange(small_grid.nvtxs))
        assert c == small_grid

    def test_full_collapse(self, small_grid):
        c = contract(small_grid, np.zeros(small_grid.nvtxs, dtype=np.int64))
        assert c.nvtxs == 1 and c.nedges == 0
        assert c.vwgt[0, 0] == small_grid.nvtxs

    def test_multiconstraint_weights_summed(self, mesh500):
        g = mesh500.with_vwgt(random_vwgt(500, 4, seed=0))
        cmap = bfs_regions(g, 20, seed=1)
        c = contract(g, cmap, 20)
        assert c.ncon == 4
        assert np.array_equal(c.total_vwgt(), g.total_vwgt())

    def test_result_validates(self, mesh500):
        cmap = bfs_regions(mesh500, 33, seed=2)
        contract(mesh500, cmap, 33).validate()

    def test_coords_centroids(self):
        g = grid_2d(2, 2)
        c = contract(g, [0, 0, 1, 1])
        assert c.coords is not None
        assert c.coords.shape == (2, 2)


class TestContractInvariants:
    def test_edge_weight_conservation(self, mesh2000):
        """cut(coarse) + internal = total: exposed edge weight only shrinks."""
        total = mesh2000.total_adjwgt()
        cmap = bfs_regions(mesh2000, 100, seed=3)
        c = contract(mesh2000, cmap, 100)
        # Edge weight across groups is preserved exactly.
        src = np.repeat(np.arange(mesh2000.nvtxs), np.diff(mesh2000.xadj))
        crossing = cmap[src] != cmap[mesh2000.adjncy]
        assert c.total_adjwgt() == int(mesh2000.adjwgt[crossing].sum()) // 2
        assert c.total_adjwgt() <= total

    def test_degree_bounded_by_group_neighbours(self, mesh500):
        cmap = bfs_regions(mesh500, 25, seed=4)
        c = contract(mesh500, cmap, 25)
        assert c.degrees().max() <= 24


class TestContractErrors:
    def test_wrong_length(self, small_grid):
        with pytest.raises(GraphError):
            contract(small_grid, [0, 1])

    def test_out_of_range(self, small_grid):
        cmap = np.zeros(small_grid.nvtxs, dtype=np.int64)
        with pytest.raises(GraphError):
            contract(small_grid, cmap, 0)

    def test_unused_coarse_id(self, small_grid):
        cmap = np.zeros(small_grid.nvtxs, dtype=np.int64)
        with pytest.raises(GraphError):
            contract(small_grid, cmap, 2)
