"""Unit tests for the CSR Graph structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, WeightError
from repro.graph import Graph, from_edges


def triangle() -> Graph:
    return from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_empty_graph(self):
        g = Graph([0], [])
        assert g.nvtxs == 0
        assert g.nedges == 0
        assert g.ncon == 1

    def test_isolated_vertices(self):
        g = Graph([0, 0, 0, 0], [])
        assert g.nvtxs == 3
        assert g.nedges == 0
        assert g.degrees().tolist() == [0, 0, 0]

    def test_triangle_counts(self):
        g = triangle()
        assert g.nvtxs == 3
        assert g.nedges == 3
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_default_weights_are_unit(self):
        g = triangle()
        assert np.all(g.vwgt == 1)
        assert g.vwgt.shape == (3, 1)
        assert np.all(g.adjwgt == 1)

    def test_vwgt_1d_promoted_to_column(self):
        g = from_edges(3, [(0, 1), (1, 2)], vwgt=[5, 6, 7])
        assert g.vwgt.shape == (3, 1)
        assert g.total_vwgt().tolist() == [18]

    def test_multiconstraint_vwgt(self):
        vw = [[1, 2], [3, 4], [5, 6]]
        g = from_edges(3, [(0, 1)], vwgt=vw)
        assert g.ncon == 2
        assert g.total_vwgt().tolist() == [9, 12]

    def test_negative_vwgt_rejected(self):
        with pytest.raises(WeightError):
            Graph([0, 1, 2], [1, 0], vwgt=[[1], [-1]])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [0])

    def test_asymmetric_rejected(self):
        # Edge 0->1 present but 1->0 missing.
        with pytest.raises(GraphError):
            Graph([0, 1, 1], [1])

    def test_asymmetric_weights_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1, 2], [1, 0], adjwgt=[2, 3])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1, 2], [5, 0])

    def test_bad_xadj_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 2, 1, 2], [1, 0, 2, 1])  # non-monotone (and wrong)

    def test_xadj_must_cover_adjncy(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [1, 0])


class TestAccessors:
    def test_degree_and_degrees(self, small_grid):
        degs = small_grid.degrees()
        assert degs.sum() == 2 * small_grid.nedges
        for v in [0, 5, 20]:
            assert small_grid.degree(v) == degs[v]
        # Corners of a grid have degree 2.
        assert small_grid.degree(0) == 2

    def test_edges_iterator_matches_edge_arrays(self, small_grid):
        it = sorted(small_grid.edges())
        us, vs, ws = small_grid.edge_arrays()
        arr = sorted(zip(us.tolist(), vs.tolist(), ws.tolist()))
        assert it == arr
        assert len(it) == small_grid.nedges

    def test_total_adjwgt_counts_each_edge_once(self):
        g = from_edges(3, [(0, 1), (1, 2)], weights=[3, 4])
        assert g.total_adjwgt() == 7

    def test_edge_weights_view_aligned(self):
        g = from_edges(3, [(0, 1), (1, 2)], weights=[3, 4])
        nbrs = g.neighbors(1).tolist()
        ws = g.edge_weights(1).tolist()
        assert dict(zip(nbrs, ws)) == {0: 3, 2: 4}


class TestDerivation:
    def test_copy_is_deep(self, small_grid):
        c = small_grid.copy()
        assert c == small_grid
        c.vwgt[0, 0] = 99
        assert not np.array_equal(c.vwgt, small_grid.vwgt)

    def test_with_vwgt_shares_topology(self, small_grid):
        vw = np.arange(small_grid.nvtxs * 2).reshape(-1, 2) + 1
        g = small_grid.with_vwgt(vw)
        assert g.ncon == 2
        assert g.adjncy is small_grid.adjncy
        assert g.nedges == small_grid.nedges

    def test_with_vwgt_rejects_bad_shape(self, small_grid):
        with pytest.raises(WeightError):
            small_grid.with_vwgt(np.ones((3, 2)))

    def test_with_adjwgt_roundtrip(self, small_grid):
        w = np.full_like(small_grid.adjwgt, 5)
        g = small_grid.with_adjwgt(w)
        assert g.total_adjwgt() == 5 * small_grid.nedges

    def test_with_adjwgt_rejects_asymmetric(self, small_grid):
        w = small_grid.adjwgt.copy()
        w[0] += 1
        with pytest.raises(GraphError):
            small_grid.with_adjwgt(w)

    def test_equality(self):
        assert triangle() == triangle()
        assert triangle() != from_edges(3, [(0, 1), (1, 2)])

    def test_coords_validation(self, small_grid):
        g = small_grid.copy()
        with pytest.raises(GraphError):
            g.coords = np.zeros((3, 2))
        g.coords = np.zeros((g.nvtxs, 2))
        assert g.coords.shape == (g.nvtxs, 2)
