"""Tests for the SVG partition renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, PartitionError
from repro.graph import from_edges, grid_2d
from repro.viz import PALETTE, partition_svg, save_partition_svg


class TestPartitionSvg:
    def test_basic_document(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 1], 8)
        svg = partition_svg(g, part)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") == 16
        assert PALETTE[0] in svg and PALETTE[1] in svg

    def test_cut_edges_highlighted(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 1], 8)
        svg = partition_svg(g, part)
        assert 'stroke="#222222"' in svg  # cut edges
        assert 'stroke="#dddddd"' in svg  # internal edges

    def test_no_edges_mode(self):
        g = grid_2d(3, 3)
        svg = partition_svg(g, np.zeros(9, dtype=int), show_edges=False)
        assert "path" not in svg

    def test_requires_coords(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(GraphError):
            partition_svg(g, np.zeros(3, dtype=int))

    def test_part_shape_checked(self):
        g = grid_2d(3, 3)
        with pytest.raises(PartitionError):
            partition_svg(g, np.zeros(4, dtype=int))

    def test_many_parts_cycle_palette(self):
        g = grid_2d(6, 6)
        part = np.arange(36) % 20
        svg = partition_svg(g, part)
        assert svg.count("<g fill=") == 20

    def test_save(self, tmp_path):
        g = grid_2d(3, 3)
        p = tmp_path / "out.svg"
        save_partition_svg(g, np.zeros(9, dtype=int), p)
        assert p.read_text().startswith("<svg")

    def test_degenerate_coords(self):
        g = grid_2d(1, 3)  # all x coordinates equal
        svg = partition_svg(g, np.zeros(3, dtype=int))
        assert "<svg" in svg

    def test_real_partition_renders(self, tri800):
        from repro.partition import part_graph

        res = part_graph(tri800, 4, seed=0)
        svg = partition_svg(tri800, res.part)
        assert svg.count("<g fill=") == 4
