"""Unit tests for the simplicial-mesh substrate and mesh-to-graph pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import is_connected
from repro.mesh import (
    SimplicialMesh,
    delaunay_triangulation,
    dual_graph,
    nodal_graph,
    tet_grid,
    triangle_grid,
)


class TestSimplicialMesh:
    def test_two_triangles(self):
        mesh = SimplicialMesh(np.array([[0, 1, 2], [1, 2, 3]]))
        assert mesh.nelements == 2
        assert mesh.nnodes == 4
        assert mesh.dim == 2

    def test_facets_shape_and_ownership(self):
        mesh = SimplicialMesh(np.array([[0, 1, 2], [1, 2, 3]]))
        f = mesh.facets()
        assert f.shape == (6, 2)
        # Element 0 owns the first 3 facet rows.
        first = {tuple(r) for r in f[:3].tolist()}
        assert first == {(0, 1), (0, 2), (1, 2)}

    def test_degenerate_element_rejected(self):
        with pytest.raises(GraphError):
            SimplicialMesh(np.array([[0, 1, 1]]))

    def test_bad_shapes_rejected(self):
        with pytest.raises(GraphError):
            SimplicialMesh(np.array([[0, 1]]))
        with pytest.raises(GraphError):
            SimplicialMesh(np.array([[0, 1, 2]]), points=np.zeros((2, 2)))

    def test_centroids(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        mesh = SimplicialMesh(np.array([[0, 1, 2]]), pts)
        assert np.allclose(mesh.element_centroids(), [[1 / 3, 1 / 3]])

    def test_centroids_need_points(self):
        with pytest.raises(GraphError):
            SimplicialMesh(np.array([[0, 1, 2]])).element_centroids()


class TestDualGraph:
    def test_two_triangles_share_edge(self):
        mesh = SimplicialMesh(np.array([[0, 1, 2], [1, 2, 3]]))
        g = dual_graph(mesh)
        assert g.nvtxs == 2
        assert g.nedges == 1

    def test_disjoint_triangles(self):
        mesh = SimplicialMesh(np.array([[0, 1, 2], [3, 4, 5]]))
        g = dual_graph(mesh)
        assert g.nedges == 0

    def test_triangle_grid_counts(self):
        mesh = triangle_grid(5, 4)
        g = dual_graph(mesh)
        assert g.nvtxs == mesh.nelements == 2 * 4 * 3
        # Interior facet count: each pair of triangles in a cell shares its
        # diagonal (12 cells) + inter-cell shared edges.
        assert is_connected(g)
        assert g.degrees().max() <= 3  # triangle has 3 facets

    def test_tet_grid_dual(self):
        mesh = tet_grid(3, 3, 3)
        g = dual_graph(mesh)
        assert g.nvtxs == 6 * 8
        assert is_connected(g)
        assert g.degrees().max() <= 4  # tet has 4 facets

    def test_delaunay_dual_planar(self):
        mesh = delaunay_triangulation(200, seed=0)
        g = dual_graph(mesh)
        assert g.nvtxs == mesh.nelements
        assert g.degrees().max() <= 3
        assert is_connected(g)

    def test_coords_are_centroids(self):
        mesh = triangle_grid(3, 3)
        g = dual_graph(mesh)
        assert g.coords is not None
        assert np.allclose(g.coords, mesh.element_centroids())


class TestNodalGraph:
    def test_two_triangles(self):
        mesh = SimplicialMesh(np.array([[0, 1, 2], [1, 2, 3]]))
        g = nodal_graph(mesh)
        assert g.nvtxs == 4
        assert g.nedges == 5  # K4 minus edge (0,3)

    def test_grid_nodal_matches_points(self):
        mesh = triangle_grid(4, 4)
        g = nodal_graph(mesh)
        assert g.nvtxs == 16
        assert g.coords is not None
        assert is_connected(g)


class TestGenerators:
    def test_triangle_grid_validation(self):
        with pytest.raises(GraphError):
            triangle_grid(1, 5)

    def test_tet_grid_validation(self):
        with pytest.raises(GraphError):
            tet_grid(2, 1, 2)

    def test_tet_grid_conforming(self):
        """Every interior facet is shared by exactly two tets."""
        mesh = tet_grid(3, 2, 2)
        f = mesh.facets()
        order = np.lexsort(f.T[::-1])
        sf = f[order]
        same = np.all(sf[1:] == sf[:-1], axis=1)
        # Count run lengths: no facet may appear 3+ times.
        runs = np.split(same, np.flatnonzero(~same) + 1)
        assert all(r.sum() <= 1 for r in runs)

    def test_delaunay_validation(self):
        with pytest.raises(GraphError):
            delaunay_triangulation(2)


class TestEndToEnd:
    def test_partition_a_mesh_dual(self):
        from repro.partition import part_graph

        mesh = delaunay_triangulation(1500, seed=1)
        g = dual_graph(mesh)
        res = part_graph(g, 4, seed=2)
        assert res.feasible
        # A planar dual: cut should be a tiny fraction of the edges.
        assert res.edgecut < 0.2 * g.nedges
