"""Tests for the multilevel diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    coarsening_profile,
    matching_efficiency,
    partition_anatomy,
    profile_text,
)
from repro.coarsen import coarsen, heavy_edge_matching
from repro.errors import PartitionError
from repro.parallel import DistGraph, SimCluster, parallel_matching


class TestCoarseningProfile:
    def test_levels_and_monotone_shrink(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=100, seed=0)
        prof = coarsening_profile(hier)
        assert len(prof) == hier.nlevels + 1
        assert prof[0]["nvtxs"] == 2000
        assert prof[0]["shrink"] == 1.0
        for p in prof[1:]:
            assert p["shrink"] < 1.0
        # Exposed edge weight decreases monotonically.
        ws = [p["exposed_edge_weight"] for p in prof]
        assert ws == sorted(ws, reverse=True)

    def test_max_vwgt_grows(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=100, seed=1)
        prof = coarsening_profile(hier)
        assert prof[-1]["max_vwgt"] > prof[0]["max_vwgt"]

    def test_profile_text(self, mesh500):
        hier = coarsen(mesh500, coarsen_to=100, seed=2)
        txt = profile_text(coarsening_profile(hier))
        assert "coarsening profile" in txt
        assert "500" in txt


class TestMatchingEfficiency:
    def test_serial_vs_parallel_efficiency(self, mesh2000):
        """The mechanism of slow coarsening: parallel matching pairs fewer
        vertices than serial matching."""
        serial = matching_efficiency(heavy_edge_matching(mesh2000, seed=3))
        c = SimCluster(8)
        par = matching_efficiency(
            parallel_matching(DistGraph(mesh2000, 8), c, seed=3)
        )
        assert 0.5 < par <= serial + 0.05
        assert serial > 0.8

    def test_bounds(self):
        assert matching_efficiency(np.array([1, 0, 2])) == pytest.approx(2 / 3)
        assert matching_efficiency(np.arange(4)) == 0.0
        assert matching_efficiency(np.array([], dtype=np.int64)) == 0.0


class TestPartitionAnatomy:
    def test_fields_consistent(self, mesh500):
        rng = np.random.default_rng(4)
        part = rng.integers(0, 4, 500)
        rows = partition_anatomy(mesh500, part, 4)
        assert len(rows) == 4
        assert sum(r["nvtxs"] for r in rows) == 500
        # External edge weight is symmetric: the total must be even and
        # equal to twice the cut.
        from repro.metrics import edge_cut

        assert sum(r["external_edge_weight"] for r in rows) == 2 * edge_cut(
            mesh500, part
        )

    def test_single_part(self, mesh500):
        rows = partition_anatomy(mesh500, np.zeros(500, dtype=np.int64), 1)
        assert rows[0]["external_edge_weight"] == 0
        assert rows[0]["boundary"] == 0
        assert rows[0]["subdomain_degree"] == 0

    def test_shape_checked(self, mesh500):
        with pytest.raises(PartitionError):
            partition_anatomy(mesh500, np.zeros(3), 2)
