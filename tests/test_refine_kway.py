"""Unit tests for greedy multi-constraint k-way refinement and the
explicit balancer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import grid_2d
from repro.refine import KWayState, balance_kway, edge_cut, kway_refine
from repro.weights import max_imbalance, type1_region_weights


def _state_invariants(state: KWayState):
    pw = np.zeros_like(state.pw)
    for c in range(state.relw.shape[1]):
        pw[:, c] = np.bincount(state.where, weights=state.relw[:, c],
                               minlength=state.nparts)
    assert np.allclose(state.pw, pw, atol=1e-9)
    assert np.array_equal(state.counts,
                          np.bincount(state.where, minlength=state.nparts))


class TestKWayState:
    def test_initial_state(self, mesh500):
        rng = np.random.default_rng(0)
        where = rng.integers(0, 4, 500)
        state = KWayState(mesh500, where, 4)
        _state_invariants(state)

    def test_moves_consistent(self, mesh500):
        rng = np.random.default_rng(1)
        where = rng.integers(0, 4, 500)
        state = KWayState(mesh500, where, 4)
        for v in rng.integers(0, 500, 60).tolist():
            state.move(v, int(rng.integers(4)))
        _state_invariants(state)

    def test_boundary_detection(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)
        state = KWayState(g, part, 2)
        assert sorted(state.boundary().tolist()) == list(range(4, 12))

    def test_rejects_out_of_range(self, mesh500):
        with pytest.raises(PartitionError):
            KWayState(mesh500, np.full(500, 9), 4)


class TestKWayRefine:
    def test_improves_random(self, mesh2000):
        rng = np.random.default_rng(2)
        where = rng.integers(0, 8, 2000)
        stats = kway_refine(mesh2000, where, 8, seed=3)
        assert stats.final_cut < stats.initial_cut
        assert stats.final_cut == edge_cut(mesh2000, where)
        assert stats.feasible

    def test_multiconstraint_feasible(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 4, seed=4))
        rng = np.random.default_rng(5)
        where = rng.integers(0, 8, 2000)
        stats = kway_refine(g, where, 8, ubvec=1.10, seed=6)
        assert stats.feasible
        assert max_imbalance(g.vwgt, where, 8) <= 1.10 + 1e-9

    def test_no_move_on_perfect_partition(self):
        g = grid_2d(4, 4)
        part = np.repeat([0, 0, 1, 1], 4)
        stats = kway_refine(g, part, 2, seed=0)
        assert stats.final_cut <= 4

    def test_never_empties_a_part(self, mesh500):
        rng = np.random.default_rng(7)
        where = rng.integers(0, 16, 500)
        kway_refine(mesh500, where, 16, seed=8)
        assert np.all(np.bincount(where, minlength=16) > 0)

    def test_deterministic(self, mesh500):
        rng = np.random.default_rng(9)
        base = rng.integers(0, 4, 500)
        a, b = base.copy(), base.copy()
        sa = kway_refine(mesh500, a, 4, seed=10)
        sb = kway_refine(mesh500, b, 4, seed=10)
        assert sa.final_cut == sb.final_cut
        assert np.array_equal(a, b)


class TestBalanceKWay:
    def test_restores_feasibility(self, mesh2000):
        where = np.zeros(2000, dtype=np.int64)
        where[:50] = 1
        where[50:100] = 2
        where[100:150] = 3
        moved = balance_kway(mesh2000, where, 4, ubvec=1.05)
        assert moved > 0
        assert max_imbalance(mesh2000.vwgt, where, 4) <= 1.05 + 1e-9

    def test_multiconstraint(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=11))
        rng = np.random.default_rng(12)
        # Very skewed by construction: sort vertices by weight into parts.
        order = np.argsort(g.vwgt[:, 0])
        where = np.zeros(2000, dtype=np.int64)
        where[order[:1700]] = 0
        where[order[1700:]] = 1
        where[order[1800:]] = 2
        where[order[1900:]] = 3
        balance_kway(g, where, 4, ubvec=1.25)
        assert max_imbalance(g.vwgt, where, 4) <= 1.25 + 1e-6

    def test_noop_when_feasible(self, mesh500):
        where = (np.arange(500) % 4).astype(np.int64)
        assert balance_kway(mesh500, where, 4, ubvec=1.05) == 0

    def test_terminates_on_impossible_instance(self, mesh500):
        vw = np.ones((500, 1), dtype=np.int64)
        vw[0] = 1000  # giant vertex makes 1% tolerance impossible
        g = mesh500.with_vwgt(vw)
        where = (np.arange(500) % 4).astype(np.int64)
        balance_kway(g, where, 4, ubvec=1.01)  # must terminate
