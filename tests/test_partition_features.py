"""Tests for the newer driver features: non-uniform target fractions,
multilevel instrumentation, and the priority k-way refinement policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BalanceError, PartitionError
from repro.graph import mesh_like
from repro.partition import PartitionOptions, part_graph
from repro.refine import kway_refine
from repro.weights import part_weights, type1_region_weights


class TestTargetFracs:
    @pytest.mark.parametrize("method", ["kway", "recursive"])
    def test_fractions_respected(self, mesh2000, method):
        fr = [0.4, 0.3, 0.2, 0.1]
        res = part_graph(mesh2000, 4, method=method,
                         target_fracs=fr, seed=0)
        pw = part_weights(mesh2000.vwgt, res.part, 4)[:, 0] / 2000
        # No part may exceed its (5%-slack) target; undershoot is allowed.
        assert np.all(pw <= np.asarray(fr) * 1.05 + 1e-9)
        assert res.feasible

    def test_multiconstraint_fractions(self, mesh2000):
        g = mesh2000.with_vwgt(type1_region_weights(mesh2000, 2, seed=1))
        fr = [0.5, 0.25, 0.25]
        res = part_graph(g, 3, target_fracs=fr, ubvec=1.10, seed=2)
        pw = part_weights(g.vwgt, res.part, 3).astype(float)
        pw /= pw.sum(axis=0)
        assert np.all(pw <= np.asarray(fr)[:, None] * 1.10 + 1e-9)

    def test_imbalance_measured_against_targets(self, mesh500):
        res = part_graph(mesh500, 2, target_fracs=[0.75, 0.25], seed=3)
        # A (75, 25) split measured against uniform targets would show
        # imbalance 1.5; against the requested targets it must be ~1.
        assert res.max_imbalance <= 1.06

    def test_bad_fractions_rejected(self, mesh500):
        with pytest.raises(BalanceError):
            part_graph(mesh500, 2, target_fracs=[1.0, 0.0], seed=0)
        with pytest.raises(BalanceError):
            part_graph(mesh500, 2, target_fracs=[0.5, 0.3, 0.2], seed=0)


class TestCollectStats:
    def test_kway_trace(self, mesh2000):
        res = part_graph(mesh2000, 8, seed=4, collect_stats=True)
        st = res.stats
        assert st["method"] == "kway"
        assert st["levels"][0] == 2000
        assert st["levels"] == sorted(st["levels"], reverse=True)
        assert len(st["trace"]) == len(st["levels"]) - 1
        # Cut decreases (or holds) as refinement proceeds to finer levels
        # only in general tendency; assert the trace is populated sanely.
        for entry in st["trace"]:
            assert entry["cut"] >= 0
            assert entry["imbalance"] >= 1.0 - 1e-9
        assert st["coarsen_seconds"] >= 0

    def test_recursive_trace(self, mesh500):
        res = part_graph(mesh500, 6, method="recursive", seed=5,
                         collect_stats=True)
        st = res.stats
        assert st["method"] == "recursive"
        assert st["bisections"] == 5  # k-1 bisections for k parts
        assert st["trace"][0]["nvtxs"] == 500

    def test_default_off(self, mesh500):
        assert part_graph(mesh500, 2, seed=6).stats is None


class TestKwayPolicy:
    def test_priority_policy_runs(self, mesh2000):
        res = part_graph(mesh2000, 8, seed=7, kway_policy="priority")
        assert res.feasible

    def test_priority_at_least_as_good_from_same_start(self, mesh2000):
        rng = np.random.default_rng(8)
        base = (np.arange(2000) % 8).astype(np.int64)
        rng.shuffle(base)
        a, b = base.copy(), base.copy()
        sg = kway_refine(mesh2000, a, 8, policy="greedy", seed=9)
        sp = kway_refine(mesh2000, b, 8, policy="priority", seed=9)
        assert sp.final_cut <= 1.15 * sg.final_cut

    def test_each_vertex_moves_at_most_once_per_pass(self, mesh500):
        # One pass from a 2-coloured start cannot oscillate: cut must not
        # increase.
        from repro.metrics import edge_cut

        rng = np.random.default_rng(10)
        where = rng.integers(0, 4, 500)
        cut0 = edge_cut(mesh500, where)
        st = kway_refine(mesh500, where, 4, policy="priority",
                         npasses=1, seed=11)
        assert st.final_cut <= cut0

    def test_invalid_policy_rejected(self, mesh500):
        with pytest.raises(PartitionError):
            kway_refine(mesh500, np.zeros(500, dtype=np.int64), 1,
                        policy="bogus")
        with pytest.raises(PartitionError):
            PartitionOptions(kway_policy="bogus")
