"""Robustness tests for the file readers: malformed and adversarial inputs
must raise library errors, never crash with stray exceptions, and valid
inputs must survive arbitrary formatting noise."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.graph import (
    from_edges,
    read_edgelist,
    read_metis_graph,
    read_partition,
    write_metis_graph,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(st.text(max_size=300))
@settings(max_examples=80, **COMMON)
def test_metis_reader_never_crashes_unhandled(text):
    """Arbitrary text either parses or raises a ReproError subclass."""
    try:
        g = read_metis_graph(io.StringIO(text))
        g.validate()
    except ReproError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=60, **COMMON)
def test_edgelist_reader_never_crashes_unhandled(text):
    try:
        read_edgelist(io.StringIO(text))
    except ReproError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=60, **COMMON)
def test_partition_reader_never_crashes_unhandled(text):
    try:
        read_partition(io.StringIO(text))
    except ReproError:
        pass


@st.composite
def small_graph_and_noise(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = sorted({(min(a, b), max(a, b))
                    for a, b in rng.integers(0, n, size=(20, 2)) if a != b})
    vwgt = rng.integers(1, 9, size=(n, draw(st.integers(1, 3))))
    g = from_edges(n, np.asarray(edges) if edges else [], vwgt=vwgt)
    comment_lines = draw(st.integers(0, 3))
    return g, comment_lines


@given(small_graph_and_noise())
@settings(max_examples=60, **COMMON)
def test_metis_roundtrip_with_comment_noise(args):
    """Round-trips survive injected comment lines and blank lines."""
    g, ncomments = args
    buf = io.StringIO()
    write_metis_graph(g, buf)
    lines = buf.getvalue().splitlines()
    noisy = []
    for i, ln in enumerate(lines):
        noisy.append(ln)
        if i < ncomments:
            noisy.append("% injected comment")
            noisy.append("")
    back = read_metis_graph(io.StringIO("\n".join(noisy) + "\n"))
    assert back == g


class TestAdversarialMetis:
    @pytest.mark.parametrize("text", [
        "1 0 0999\n\n",              # bad fmt digits
        "2 1\n2 2\n1\n",             # duplicate directed entry -> count off
        "1 1\n1\n",                  # self-loop via 1-based id
        "2 1 011 0\n1 2 1\n1 1 1\n", # ncon=0
        "-1 0\n",                    # negative counts
    ])
    def test_rejected_cleanly(self, text):
        with pytest.raises(ReproError):
            g = read_metis_graph(io.StringIO(text))
            g.validate()
