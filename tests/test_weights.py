"""Unit tests for weight normalisation, balance arithmetic, and the Type-1 /
Type-2 workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BalanceError, PartitionError, WeightError
from repro.weights import (
    DEFAULT_ACTIVE_FRACTIONS,
    as_target_fracs,
    as_ubvec,
    coactivity_edge_weights,
    imbalance,
    is_balanced,
    max_imbalance,
    max_relative_weight,
    part_weights,
    random_vwgt,
    relative_weights,
    totals,
    type1_region_weights,
    type2_multiphase,
)


class TestNormalize:
    def test_relative_weights_columns_sum_to_one(self):
        w = np.array([[1, 10], [3, 30], [6, 60]])
        r = relative_weights(w)
        assert np.allclose(r.sum(axis=0), 1.0)
        assert np.allclose(r[:, 0], r[:, 1])

    def test_zero_column_rejected(self):
        with pytest.raises(WeightError):
            relative_weights(np.array([[1, 0], [2, 0]]))

    def test_totals(self):
        assert totals(np.array([[1, 2], [3, 4]])).tolist() == [4, 6]

    def test_totals_requires_2d(self):
        with pytest.raises(WeightError):
            totals(np.array([1, 2, 3]))

    def test_max_relative_weight(self):
        w = np.array([[1], [1], [2]])
        assert max_relative_weight(w) == pytest.approx(0.5)

    def test_totals_overflow_raises_instead_of_wrapping(self):
        # Regression: an int64 column sum that wraps negative used to
        # poison every relative weight downstream.  Both the wrapping case
        # and the near-limit case must raise loudly.
        huge = np.full((4, 1), 2**62, dtype=np.int64)  # sums past 2**63
        with pytest.raises(WeightError, match="overflow"):
            totals(huge)
        # A wrap that lands back in positive territory is caught too (the
        # float64 shadow sum, not the sign bit, is the detector).
        sneaky = np.full((8, 2), 2**61, dtype=np.int64)
        with pytest.raises(WeightError, match="rescale"):
            totals(sneaky)

    def test_totals_large_but_safe_is_exact(self):
        w = np.full((4, 1), 2**59, dtype=np.int64)
        assert totals(w).tolist() == [2**61]


class TestPartWeights:
    def test_basic(self):
        vw = np.array([[1, 10], [2, 20], [3, 30]])
        pw = part_weights(vw, np.array([0, 1, 0]), 2)
        assert pw.tolist() == [[4, 40], [2, 20]]

    def test_empty_part_is_zero(self):
        pw = part_weights(np.array([[1]]), np.array([0]), 3)
        assert pw.tolist() == [[1], [0], [0]]

    def test_misaligned_rejected(self):
        with pytest.raises(PartitionError):
            part_weights(np.ones((3, 1)), np.array([0, 1]), 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            part_weights(np.ones((2, 1)), np.array([0, 2]), 2)


class TestImbalance:
    def test_perfect(self):
        vw = np.ones((4, 2), dtype=np.int64)
        part = np.array([0, 0, 1, 1])
        assert np.allclose(imbalance(vw, part, 2), 1.0)
        assert max_imbalance(vw, part, 2) == pytest.approx(1.0)

    def test_skewed(self):
        vw = np.array([[3], [1], [1], [1]])
        part = np.array([0, 1, 1, 1])
        # part 0 has 3 of 6 total, target 3; part 1 has 3 -> balanced.
        assert max_imbalance(vw, part, 2) == pytest.approx(1.0)
        part = np.array([0, 0, 1, 1])
        # part 0 has 4/6 -> 4/3 imbalance.
        assert max_imbalance(vw, part, 2) == pytest.approx(4 / 3)

    def test_per_constraint_independent(self):
        vw = np.array([[1, 3], [1, 1], [1, 1], [1, 1]])
        part = np.array([0, 0, 1, 1])
        im = imbalance(vw, part, 2)
        assert im[0] == pytest.approx(1.0)
        assert im[1] == pytest.approx(4 / 3)

    def test_target_fractions(self):
        vw = np.ones((4, 1), dtype=np.int64)
        part = np.array([0, 0, 0, 1])
        im = imbalance(vw, part, 2, target_fracs=[0.75, 0.25])
        assert im[0] == pytest.approx(1.0)

    def test_is_balanced(self):
        vw = np.ones((4, 1), dtype=np.int64)
        assert is_balanced(vw, np.array([0, 0, 1, 1]), 2, 1.05)
        assert not is_balanced(vw, np.array([0, 0, 0, 1]), 2, 1.05)


class TestCoercions:
    def test_ubvec_scalar(self):
        assert as_ubvec(1.05, 3).tolist() == [1.05, 1.05, 1.05]

    def test_ubvec_vector(self):
        assert as_ubvec([1.1, 1.2], 2).tolist() == [1.1, 1.2]

    def test_ubvec_bad_length(self):
        with pytest.raises(BalanceError):
            as_ubvec([1.1], 2)

    def test_ubvec_must_exceed_one(self):
        with pytest.raises(BalanceError):
            as_ubvec(1.0, 2)

    def test_target_fracs_default_uniform(self):
        assert np.allclose(as_target_fracs(None, 4), 0.25)

    def test_target_fracs_renormalised(self):
        fr = as_target_fracs([1, 3], 2)
        assert np.allclose(fr, [0.25, 0.75])

    def test_target_fracs_positive(self):
        with pytest.raises(BalanceError):
            as_target_fracs([0.0, 1.0], 2)


class TestRandomVwgt:
    def test_shape_and_range(self):
        w = random_vwgt(100, 3, seed=0)
        assert w.shape == (100, 3)
        assert w.min() >= 0 and w.max() <= 19

    def test_no_zero_column(self):
        w = random_vwgt(5, 2, low=0, high=0, seed=0)
        assert np.all(w.sum(axis=0) > 0)

    def test_bad_args(self):
        with pytest.raises(WeightError):
            random_vwgt(5, 0)
        with pytest.raises(WeightError):
            random_vwgt(5, 1, low=5, high=2)


class TestType1:
    def test_region_constant_vectors(self, mesh500):
        from repro.graph.ops import bfs_regions

        regions = bfs_regions(mesh500, 16, seed=1)
        w = type1_region_weights(mesh500, 3, regions=regions, seed=2)
        assert w.shape == (500, 3)
        for rid in range(16):
            rows = w[regions == rid]
            assert np.all(rows == rows[0])

    def test_columns_nonzero(self, mesh500):
        w = type1_region_weights(mesh500, 5, seed=3)
        assert np.all(w.sum(axis=0) > 0)

    def test_deterministic(self, mesh500):
        a = type1_region_weights(mesh500, 2, seed=9)
        b = type1_region_weights(mesh500, 2, seed=9)
        assert np.array_equal(a, b)

    def test_regions_shape_checked(self, mesh500):
        with pytest.raises(WeightError):
            type1_region_weights(mesh500, 2, regions=np.zeros(3, dtype=int))


class TestType2:
    def test_phase0_fully_active(self, mesh500):
        vw, act = type2_multiphase(mesh500, 3, seed=0)
        assert np.all(act[:, 0])
        assert vw.shape == (500, 3)
        assert set(np.unique(vw)) <= {0, 1}

    def test_active_fractions_respected(self, mesh2000):
        vw, act = type2_multiphase(mesh2000, 5, nregions=32, seed=1)
        fracs = act.mean(axis=0)
        expected = np.array(DEFAULT_ACTIVE_FRACTIONS)
        # Regions are uneven so allow generous slack, but ordering of the
        # big differences must hold.
        assert fracs[0] == 1.0
        assert fracs[4] < fracs[1]

    def test_explicit_fractions(self, mesh500):
        vw, act = type2_multiphase(mesh500, 2, active_fractions=[1.0, 0.5],
                                   nregions=10, seed=2)
        assert act[:, 1].mean() < 1.0

    def test_too_many_phases_needs_explicit_fractions(self, mesh500):
        with pytest.raises(WeightError):
            type2_multiphase(mesh500, 6, seed=0)

    def test_bad_fractions(self, mesh500):
        with pytest.raises(WeightError):
            type2_multiphase(mesh500, 2, active_fractions=[1.0, 0.0])


class TestCoactivity:
    def test_weights_count_shared_phases(self):
        from repro.graph import from_edges

        g = from_edges(3, [(0, 1), (1, 2)])
        act = np.array([[1, 1], [1, 0], [0, 1]], dtype=bool)
        ew = coactivity_edge_weights(g, act)
        gw = g.with_adjwgt(ew)
        # edge (0,1): both active in phase 0 only -> 1
        # edge (1,2): no shared phase -> 0
        assert gw.total_adjwgt() == 1

    def test_full_activity_weight_equals_nphases(self, mesh500):
        act = np.ones((500, 4), dtype=bool)
        ew = coactivity_edge_weights(mesh500, act)
        assert np.all(ew == 4)

    def test_misaligned_rejected(self, mesh500):
        with pytest.raises(WeightError):
            coactivity_edge_weights(mesh500, np.ones((3, 2), dtype=bool))

    def test_symmetric(self, mesh500):
        _, act = type2_multiphase(mesh500, 3, seed=5)
        ew = coactivity_edge_weights(mesh500, act)
        mesh500.with_adjwgt(ew).validate()


class TestTraces:
    def test_moving_front_shapes_and_sweep(self, mesh2000):
        from repro.weights import moving_front_trace

        trace = moving_front_trace(mesh2000, 5, seed=0)
        assert len(trace) == 5
        for vw in trace:
            assert vw.shape == (2000, 2)
            assert np.all(vw[:, 0] == 1)
            assert vw[:, 1].sum() > 0
        # The front moves: consecutive active sets differ.
        a0 = trace[0][:, 1] > 0
        a4 = trace[-1][:, 1] > 0
        assert (a0 != a4).mean() > 0.1

    def test_growing_region_monotone(self, mesh2000):
        from repro.weights import growing_region_trace

        trace = growing_region_trace(mesh2000, 4, peak_fraction=0.5, seed=1)
        sizes = [int((vw[:, 1] > 0).sum()) for vw in trace]
        assert sizes == sorted(sizes)
        assert sizes[-1] == pytest.approx(1000, rel=0.05)
        # Nesting: earlier regions are subsets of later ones.
        for a, b in zip(trace, trace[1:]):
            assert np.all((a[:, 1] > 0) <= (b[:, 1] > 0))

    def test_drifting_phases_coherent(self, mesh2000):
        from repro.weights import drifting_phases_trace

        trace = drifting_phases_trace(mesh2000, 4, nphases=3, drift=0.25, seed=2)
        assert len(trace) == 4
        for vw in trace:
            assert vw.shape == (2000, 3)
            assert np.all(vw[:, 0] == 1)  # base phase always fully active
        # Coherence: consecutive steps of phase 1 overlap substantially.
        a, b = trace[0][:, 1] > 0, trace[1][:, 1] > 0
        inter = np.logical_and(a, b).sum()
        union = np.logical_or(a, b).sum()
        assert inter / union > 0.4

    def test_trace_validation(self, mesh500):
        from repro.errors import WeightError
        from repro.weights import (
            drifting_phases_trace,
            growing_region_trace,
            moving_front_trace,
        )

        with pytest.raises(WeightError):
            moving_front_trace(mesh500, 0)
        with pytest.raises(WeightError):
            moving_front_trace(mesh500, 3, width=0.9)
        with pytest.raises(WeightError):
            growing_region_trace(mesh500, 2, peak_fraction=0.0)
        with pytest.raises(WeightError):
            drifting_phases_trace(mesh500, 2, drift=2.0)

    def test_traces_deterministic(self, mesh500):
        from repro.weights import drifting_phases_trace

        a = drifting_phases_trace(mesh500, 3, seed=7)
        b = drifting_phases_trace(mesh500, 3, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_trace_feeds_adaptive(self, mesh2000):
        """Traces plug straight into the adaptive repartitioner."""
        from repro.adaptive import refine_partition
        from repro.partition import part_graph
        from repro.weights import moving_front_trace

        trace = moving_front_trace(mesh2000, 3, seed=3)
        part = part_graph(mesh2000.with_vwgt(trace[0]), 4, seed=4).part
        for vw in trace[1:]:
            res = refine_partition(mesh2000.with_vwgt(vw), part, 4,
                                   ubvec=1.10, seed=5)
            part = res.part
            assert res.max_imbalance <= 1.12
