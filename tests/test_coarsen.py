"""Unit tests for matchings and the coarsener."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen import (
    Hierarchy,
    balanced_edge_matching,
    coarsen,
    heavy_edge_matching,
    is_matching,
    matching_to_cmap,
    random_matching,
)
from repro.errors import GraphError
from repro.graph import Graph, from_edges, path_graph, star_graph
from repro.weights import random_vwgt, relative_weights


class TestMatchingValidity:
    @pytest.mark.parametrize("matcher", [random_matching, heavy_edge_matching,
                                         balanced_edge_matching])
    def test_valid_matching(self, mesh500, matcher):
        match = matcher(mesh500, seed=0)
        assert is_matching(mesh500, match)

    def test_matches_most_vertices_on_mesh(self, mesh500):
        match = heavy_edge_matching(mesh500, seed=1)
        unmatched = np.count_nonzero(match == np.arange(500))
        assert unmatched < 0.2 * 500

    def test_star_graph_matches_one_pair(self):
        g = star_graph(10)
        match = heavy_edge_matching(g, seed=0)
        matched = np.count_nonzero(match != np.arange(10))
        assert matched == 2  # centre + one leaf

    def test_isolated_vertices_unmatched(self):
        g = Graph([0, 0, 0], [])
        for matcher in (random_matching, heavy_edge_matching):
            match = matcher(g, seed=0)
            assert np.array_equal(match, np.arange(2))

    def test_deterministic_given_seed(self, mesh500):
        a = heavy_edge_matching(mesh500, seed=7)
        b = heavy_edge_matching(mesh500, seed=7)
        assert np.array_equal(a, b)


class TestHeavyEdgePreference:
    def test_prefers_heavy_edge(self):
        # Triangle with one heavy edge: HEM must pick it whichever vertex
        # is visited first among its endpoints... only guaranteed when the
        # heavy edge is incident to the first visited vertex, so use a path
        # where vertex 1 sees weights 1 and 100.
        g = from_edges(3, [(0, 1), (1, 2)], weights=[1, 100])
        for seed in range(5):
            match = heavy_edge_matching(g, seed=seed)
            # Pair (1, 2) must be matched whenever vertex 1 or 2 is visited
            # before 0 pairs with 1; with weight 100 vs 1, vertex 1 always
            # prefers 2, and vertex 0's only option is 1.
            if match[1] != 1:
                assert match[1] in (0, 2)
                if match[0] == 0:  # 0 left alone -> 1 must have chosen 2
                    assert match[1] == 2

    def test_balanced_tiebreak(self):
        """Equal-weight edges: the HEM tie-break must pick the partner whose
        combined weight vector is most uniform."""
        from repro.coarsen.matching import _best_candidate

        relw = relative_weights(np.array([[10, 0], [0, 10], [10, 0]]))
        cand = np.array([1, 2])
        ws = np.array([5, 5])
        # Combined with 1: (0.5, 1.0)-ish -> uniform; with 2: (1.0, 0.0).
        assert _best_candidate(relw[0], cand, ws, relw, heavy_first=True) == 1

    def test_heavy_edge_wins_over_balance_in_hem(self):
        from repro.coarsen.matching import _best_candidate

        relw = relative_weights(np.array([[10, 0], [0, 10], [10, 0]]))
        cand = np.array([1, 2])
        ws = np.array([1, 100])  # skewed pair has the much heavier edge
        assert _best_candidate(relw[0], cand, ws, relw, heavy_first=True) == 2

    def test_balanced_edge_primary(self):
        """BEM: balance dominates even against a much heavier edge."""
        from repro.coarsen.matching import _best_candidate

        relw = relative_weights(np.array([[10, 0], [0, 10], [10, 0]]))
        cand = np.array([1, 2])
        ws = np.array([1, 100])
        assert _best_candidate(relw[0], cand, ws, relw, heavy_first=False) == 1

    def test_bem_heavy_tiebreak(self):
        from repro.coarsen.matching import _best_candidate

        # Both candidates give identical balance scores; BEM falls back to
        # the heavier edge.
        relw = relative_weights(np.array([[1, 1], [1, 1], [1, 1]]))
        cand = np.array([1, 2])
        ws = np.array([3, 7])
        assert _best_candidate(relw[0], cand, ws, relw, heavy_first=False) == 2


class TestMatchingToCmap:
    def test_pairs_share_coarse_id(self):
        match = np.array([1, 0, 2, 4, 3])
        cmap, ncoarse = matching_to_cmap(match)
        assert ncoarse == 3
        assert cmap[0] == cmap[1]
        assert cmap[3] == cmap[4]
        assert cmap[2] not in (cmap[0], cmap[3])

    def test_all_unmatched_is_identity(self):
        cmap, ncoarse = matching_to_cmap(np.arange(5))
        assert ncoarse == 5
        assert np.array_equal(cmap, np.arange(5))

    def test_ids_are_dense(self, mesh500):
        match = heavy_edge_matching(mesh500, seed=3)
        cmap, ncoarse = matching_to_cmap(match)
        assert set(np.unique(cmap)) == set(range(ncoarse))


class TestCoarsen:
    def test_reaches_target_size(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=100, seed=0)
        assert hier.coarsest.nvtxs <= 150  # close to target (one level may overshoot)
        assert hier.nlevels >= 3

    def test_weight_conservation_all_levels(self, mesh2000):
        g = mesh2000.with_vwgt(random_vwgt(2000, 3, seed=1))
        hier = coarsen(g, coarsen_to=80, seed=0)
        total = g.total_vwgt()
        for lvl in hier.levels:
            assert np.array_equal(lvl.graph.total_vwgt(), total)
        assert np.array_equal(hier.coarsest.total_vwgt(), total)

    def test_exposed_edge_weight_decreases(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=50, seed=2)
        exposed = [lvl.graph.total_adjwgt() for lvl in hier.levels]
        exposed.append(hier.coarsest.total_adjwgt())
        assert all(a >= b for a, b in zip(exposed, exposed[1:]))
        assert exposed[-1] < exposed[0]

    def test_sizes_monotone(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=64, seed=3)
        sizes = hier.sizes()
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 2000

    def test_project_to_finest_shapes(self, mesh500):
        hier = coarsen(mesh500, coarsen_to=40, seed=4)
        coarse_part = np.arange(hier.coarsest.nvtxs) % 4
        fine = hier.project_to_finest(coarse_part)
        assert fine.shape == (500,)
        assert set(np.unique(fine)) <= set(range(4))

    def test_small_graph_no_levels(self):
        g = path_graph(5)
        hier = coarsen(g, coarsen_to=10, seed=0)
        assert hier.nlevels == 0
        assert hier.coarsest is g

    def test_stall_detection_on_star_without_two_hop(self):
        # Plain matching can only remove one vertex per level on a star;
        # min_shrink stops it early.
        g = star_graph(64)
        hier = coarsen(g, coarsen_to=4, min_shrink=0.95, two_hop=False, seed=0)
        assert hier.coarsest.nvtxs > 4  # stalled, but terminated

    def test_two_hop_rescues_star(self):
        # Two-hop pairing of leaves keeps the star coarsening to target.
        g = star_graph(64)
        hier = coarsen(g, coarsen_to=4, min_shrink=0.95, two_hop=True, seed=0)
        assert hier.coarsest.nvtxs <= 8

    def test_two_hop_matching_properties(self, mesh500):
        from repro.coarsen import heavy_edge_matching, two_hop_matching

        base = heavy_edge_matching(mesh500, seed=1)
        aug = two_hop_matching(mesh500, base, seed=2)
        n = mesh500.nvtxs
        # Involutive and monotone: previously matched pairs are untouched.
        assert np.array_equal(aug[aug], np.arange(n))
        prev = base != np.arange(n)
        assert np.array_equal(aug[prev], base[prev])
        assert np.count_nonzero(aug != np.arange(n)) >= np.count_nonzero(prev)

    def test_two_hop_respects_degree_cap(self):
        from repro.coarsen import two_hop_matching

        g = star_graph(10)
        base = np.arange(10)
        aug = two_hop_matching(g, base, seed=0, max_pair_degree=0)
        assert np.array_equal(aug, base)  # nothing eligible

    def test_matching_scheme_selectable(self, mesh500):
        for scheme in ("rm", "hem", "bem"):
            hier = coarsen(mesh500, coarsen_to=60, matching=scheme, seed=5)
            assert hier.coarsest.nvtxs < 500

    def test_unknown_scheme_rejected(self, mesh500):
        with pytest.raises(GraphError):
            coarsen(mesh500, matching="nope")

    def test_bad_coarsen_to(self, mesh500):
        with pytest.raises(GraphError):
            coarsen(mesh500, coarsen_to=0)

    def test_deterministic(self, mesh500):
        a = coarsen(mesh500, coarsen_to=70, seed=9)
        b = coarsen(mesh500, coarsen_to=70, seed=9)
        assert a.sizes() == b.sizes()
        assert a.coarsest == b.coarsest

    def test_hem_coarsens_faster_than_rm_on_weighted(self, mesh2000):
        """HEM removes more exposed edge weight per level than random
        matching (the motivation for heavy-edge matching)."""
        us, vs, _ = mesh2000.edge_arrays()
        rng = np.random.default_rng(0)
        g = from_edges(2000, np.stack([us, vs], axis=1),
                       rng.integers(1, 50, size=us.shape[0]))
        h_hem = coarsen(g, coarsen_to=100, matching="hem", seed=1)
        h_rm = coarsen(g, coarsen_to=100, matching="rm", seed=1)
        # Compare exposed edge weight at similar sizes (level 2).
        assert h_hem.levels[2].graph.total_adjwgt() <= h_rm.levels[2].graph.total_adjwgt()


class TestFastHEM:
    def test_valid_matching(self, mesh2000):
        from repro.coarsen import fast_heavy_edge_matching, is_matching

        match = fast_heavy_edge_matching(mesh2000, seed=0)
        assert is_matching(mesh2000, match)

    def test_matches_most_vertices(self, mesh2000):
        from repro.coarsen import fast_heavy_edge_matching

        match = fast_heavy_edge_matching(mesh2000, seed=1)
        unmatched = np.count_nonzero(match == np.arange(2000))
        assert unmatched < 0.25 * 2000

    def test_prefers_heavy_edges(self):
        # A 4-path with a dominant middle edge must match the middle pair.
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1, 100, 1])
        from repro.coarsen import fast_heavy_edge_matching

        for seed in range(5):
            match = fast_heavy_edge_matching(g, seed=seed)
            assert match[1] == 2 and match[2] == 1

    def test_deterministic(self, mesh500):
        from repro.coarsen import fast_heavy_edge_matching

        a = fast_heavy_edge_matching(mesh500, seed=7)
        b = fast_heavy_edge_matching(mesh500, seed=7)
        assert np.array_equal(a, b)

    def test_empty_and_edgeless(self):
        from repro.coarsen import fast_heavy_edge_matching
        from repro.graph import Graph

        g = Graph([0, 0, 0], [])
        assert np.array_equal(fast_heavy_edge_matching(g, seed=0), np.arange(2))

    def test_coarsens_end_to_end(self, mesh2000):
        hier = coarsen(mesh2000, coarsen_to=100, matching="fhem", seed=2)
        assert hier.coarsest.nvtxs <= 200

    def test_driver_accepts_fhem(self, mesh500):
        from repro.partition import part_graph

        res = part_graph(mesh500, 4, matching="fhem", seed=3)
        assert res.feasible
