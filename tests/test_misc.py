"""Tests for the small shared utilities: error hierarchy, RNG plumbing,
package metadata."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import errors
from repro._rng import as_rng, spawn


class TestErrors:
    def test_hierarchy(self):
        for cls in (errors.GraphError, errors.WeightError,
                    errors.PartitionError, errors.ConvergenceError):
            assert issubclass(cls, errors.ReproError)
        assert issubclass(errors.GraphFormatError, errors.GraphError)
        assert issubclass(errors.BalanceError, errors.PartitionError)

    def test_catchable_as_base(self):
        from repro.graph import from_edges

        with pytest.raises(errors.ReproError):
            from_edges(1, [(0, 0)])

    def test_reexported_at_top_level(self):
        assert repro.GraphError is errors.GraphError
        assert repro.ReproError is errors.ReproError


class TestRng:
    def test_int_seed(self):
        a = as_rng(5).random(3)
        b = as_rng(5).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_deterministic(self):
        kids_a = spawn(as_rng(7), 3)
        kids_b = spawn(as_rng(7), 3)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.random(4), b.random(4))

    def test_spawn_children_independent(self):
        kids = spawn(as_rng(9), 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        from repro import mesh_like, part_graph, type1_region_weights

        g = mesh_like(400, seed=0)
        g = g.with_vwgt(type1_region_weights(g, 3, seed=1))
        res = part_graph(g, 4, ubvec=1.05, seed=2)
        assert res.feasible

    def test_subpackages_importable(self):
        import repro.adaptive
        import repro.analysis
        import repro.baselines
        import repro.coarsen
        import repro.graph
        import repro.initpart
        import repro.mesh
        import repro.metrics
        import repro.multiphase
        import repro.parallel
        import repro.partition
        import repro.refine
        import repro.viz
        import repro.weights
