"""Tests for the shared-memory multiprocess executor (repro.parallel.shm).

The contract under test: the shm executor is bit-identical to the
simulated oracle on fault-free runs (same message stream, same final
partition), degrades to the documented serial fallback when a worker
really dies, fires phase timeouts on real wall-clock, and never leaks a
``/dev/shm`` segment on any exit path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DegradedResult,
    FaultSpecError,
    PhaseTimeoutError,
    RankCrashedError,
)
from repro.faults import RecoveryPolicy
from repro.graph import mesh_like, path_graph
from repro.parallel import (
    MessageLog,
    ShmFabric,
    SimCluster,
    SimFabric,
    parallel_part_graph,
    run_parity,
)
from repro.obs import FlightRecorder
from repro.parallel.shm import ShmArena, active_segments
from repro.partition import PartitionOptions
from repro.trace import TraceReport, Tracer, labeled
from repro.weights import type1_region_weights


@pytest.fixture(scope="module")
def mesh_mc():
    """Small multi-constraint mesh (module-cached; every test spawns
    processes, so keep the graph small)."""
    g = mesh_like(400, seed=5)
    return g.with_vwgt(type1_region_weights(g, 2, seed=3))


def _no_leaks():
    assert active_segments() == [], "leaked /dev/shm segments"


class TestShmArena:
    def test_publish_roundtrip_and_reuse(self):
        with ShmArena() as arena:
            a = np.arange(10, dtype=np.int64)
            spec = arena.publish("a", a)
            assert spec is not None  # fresh segment: workers must attach
            key, name, shape, dtype = spec
            assert key == "a" and shape == (10,) and dtype == "<i8"
            # Same shape/dtype: in-place memcpy, no re-attach needed.
            assert arena.publish("a", a * 2) is None
            # New shape: fresh segment under a new unique name.
            spec2 = arena.publish("a", np.arange(4, dtype=np.int64))
            assert spec2 is not None and spec2[1] != name
        _no_leaks()

    def test_close_idempotent(self):
        arena = ShmArena()
        arena.publish("x", np.zeros(3))
        arena.close()
        arena.close()
        _no_leaks()

    def test_segments_visible_while_open(self):
        arena = ShmArena()
        arena.publish("x", np.zeros(3))
        assert len(active_segments()) == 1
        arena.close()
        _no_leaks()


class TestShmParity:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_bit_identical_to_simulator(self, mesh_mc, nranks):
        rep = run_parity(mesh_mc, 4, nranks,
                         options=PartitionOptions(seed=17))
        assert rep.ok, rep.summary()
        assert rep.messages > 0
        assert rep.sim_result.executor == "sim"
        assert rep.shm_result.executor == "shm"
        _no_leaks()

    def test_parity_rejects_live_generator_seed(self, mesh_mc):
        with pytest.raises(ValueError):
            run_parity(mesh_mc, 2, 2,
                       options=PartitionOptions(seed=np.random.default_rng(1)))

    def test_wall_clock_stats(self, mesh_mc):
        res = parallel_part_graph(mesh_mc, 2, 2,
                                  options=PartitionOptions(seed=9),
                                  executor="shm")
        assert res.executor == "shm"
        assert res.simulated_time > 0  # real wall seconds under shm
        assert res.stats.total_messages > 0
        assert "t_wall" in res.summary()
        _no_leaks()


class TestShmEdgeCases:
    def test_more_ranks_than_vertices(self):
        rep = run_parity(path_graph(3), 2, 5,
                         options=PartitionOptions(seed=3))
        assert rep.ok, rep.summary()
        _no_leaks()

    def test_single_part(self, mesh_mc):
        res = parallel_part_graph(mesh_mc, 1, 2,
                                  options=PartitionOptions(seed=3),
                                  executor="shm")
        assert res.edgecut == 0
        assert np.all(res.part == 0)
        _no_leaks()

    def test_fault_spec_rejected_on_shm(self, mesh_mc):
        with pytest.raises(FaultSpecError):
            parallel_part_graph(mesh_mc, 2, 2, executor="shm",
                                faults="drop=0.5")
        _no_leaks()

    def test_unknown_executor_rejected(self, mesh_mc):
        with pytest.raises(FaultSpecError):
            parallel_part_graph(mesh_mc, 2, 2, executor="mpi")


class TestShmWorkerTelemetry:
    """Worker-side telemetry piggybacks on the existing pipe replies, so
    it must not perturb parity (digests, partitions) at any rank count,
    and the drained deltas must merge into per-rank profile rows."""

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_traced_parity_bit_identical(self, mesh_mc, nranks):
        recorder = FlightRecorder()
        tracer = Tracer([recorder])
        rep = run_parity(mesh_mc, 4, nranks,
                         options=PartitionOptions(seed=17), tracer=tracer)
        assert rep.ok, rep.summary()  # equal digests AND equal partitions
        tracer.finish()
        prof = recorder.profile()
        ranks = [r["rank"] for r in prof.rank_phases]
        assert ranks == list(range(nranks))
        for row in prof.rank_phases:
            for key in ("compute_seconds", "pipe_wait_seconds",
                        "publish_seconds"):
                assert row[key] >= 0.0
            assert row["steps"] > 0
        _no_leaks()

    def test_traced_partition_matches_untraced(self, mesh_mc):
        opts = PartitionOptions(seed=23)
        plain = parallel_part_graph(mesh_mc, 4, 2, options=opts,
                                    executor="shm")
        tracer = Tracer()
        traced = parallel_part_graph(mesh_mc, 4, 2, options=opts,
                                     executor="shm", tracer=tracer)
        assert np.array_equal(plain.part, traced.part)
        assert plain.edgecut == traced.edgecut
        _no_leaks()

    def test_drained_metrics_carry_rank_labels(self, mesh_mc):
        tracer = Tracer()
        parallel_part_graph(mesh_mc, 4, 2,
                            options=PartitionOptions(seed=17),
                            executor="shm", tracer=tracer)
        counters = tracer.metrics.counter_values()
        hists = tracer.metrics.histogram_values()
        for rank in (0, 1):
            # Live per-reply counters accumulated while the run progressed.
            assert counters[labeled(
                "parallel.shm.worker.steps_total", rank=rank)] > 0
            # Drain-merged worker histograms, re-labeled per rank.
            assert hists[labeled(
                "parallel.shm.worker.compute_seconds", rank=rank)]["count"] > 0
        _no_leaks()

    def test_worker_phases_accessor_and_untraced_default(self, mesh_mc):
        fab = ShmFabric(2, tracer=Tracer())
        try:
            parallel_part_graph(mesh_mc, 4, 2,
                                options=PartitionOptions(seed=17),
                                executor=fab, tracer=fab.tracer)
            phases = fab.worker_phases()
            assert set(phases) == {0, 1}
            assert any("coarsen" in p for p in phases.values())
        finally:
            fab.close()
        # Untraced fabric: telemetry off, nothing accumulated.
        fab2 = ShmFabric(2)
        try:
            assert fab2._telemetry is False
            assert fab2.worker_phases() == {0: {}, 1: {}}
        finally:
            fab2.close()
        _no_leaks()


class TestShmCrash:
    def test_killed_worker_degrades_to_serial_fallback(self, mesh_mc):
        fab = ShmFabric(2, inject_crash=("refine", 1))
        res = parallel_part_graph(mesh_mc, 4, 2,
                                  options=PartitionOptions(seed=11),
                                  executor=fab)
        assert res.degraded
        assert "RankCrashedError" in res.degraded_reason
        assert res.stats.crashes == 1
        assert res.feasible
        _no_leaks()

    def test_crash_fallback_matches_sim_crash_fallback(self, mesh_mc):
        # The fallback seed derives from options.seed alone, so a real
        # worker kill and a simulated crash land on the same partition.
        opts = PartitionOptions(seed=11)
        shm_res = parallel_part_graph(
            mesh_mc, 4, 2, options=opts,
            executor=ShmFabric(2, inject_crash=("coarsen", 0)))
        sim_res = parallel_part_graph(
            mesh_mc, 4, 2, options=opts,
            faults="crash_permanent=1.0,phase.coarsen=1.0,"
                   "phase.initpart=0.0,phase.refine=0.0")
        assert shm_res.degraded and sim_res.degraded
        assert np.array_equal(shm_res.part, sim_res.part)
        _no_leaks()

    def test_strict_mode_raises_and_still_cleans_up(self, mesh_mc):
        fab = ShmFabric(2, inject_crash=("coarsen", 0))
        with pytest.raises(DegradedResult):
            parallel_part_graph(mesh_mc, 4, 2,
                                options=PartitionOptions(seed=11),
                                executor=fab, strict=True)
        _no_leaks()  # exceptional exit must not leak segments

    def test_crash_counters_traced(self, mesh_mc):
        tracer = Tracer()
        fab = ShmFabric(2, tracer=tracer, inject_crash=("refine", 0))
        parallel_part_graph(mesh_mc, 4, 2,
                            options=PartitionOptions(seed=11), executor=fab,
                            tracer=tracer)
        counters = TraceReport.from_tracer(tracer).counters
        assert counters.get("parallel.shm.crashes") == 1
        assert counters.get("parallel.degraded") == 1
        assert counters.get("parallel.shm.workers") == 2
        assert counters.get("parallel.shm.dispatches", 0) > 0
        _no_leaks()


class TestShmTimeout:
    def test_phase_timeout_on_wall_clock(self, mesh_mc):
        # An absurdly small real-time budget must trip PhaseTimeoutError
        # and then degrade (allow_degraded default).
        policy = RecoveryPolicy(phase_timeout=1e-9, max_retries=0)
        res = parallel_part_graph(mesh_mc, 4, 2,
                                  options=PartitionOptions(seed=11),
                                  executor="shm", recovery=policy)
        assert res.degraded
        assert "PhaseTimeoutError" in res.degraded_reason
        _no_leaks()


class TestShmFabricDirect:
    def test_collect_raises_rank_crashed(self):
        fab = ShmFabric(2)
        try:
            fab.set_phase("coarsen")
            fab._procs[1].terminate()
            fab._procs[1].join()
            with pytest.raises((RankCrashedError, PhaseTimeoutError)):
                fab._collect(1)
        finally:
            fab.close()
        _no_leaks()

    def test_close_idempotent_and_leak_free(self):
        fab = ShmFabric(2)
        fab.publish(x=np.arange(8))
        assert len(active_segments()) == 1
        fab.close()
        fab.close()
        _no_leaks()

    def test_exchange_matches_sim_routing(self):
        sim = SimFabric(SimCluster(3), message_log=MessageLog())
        shm = ShmFabric(3, message_log=MessageLog())
        try:
            payloads = [
                {1: np.array([1, 2]), 2: np.array([3])},
                {0: np.array([4])},
                {0: np.array([5]), 1: np.array([6])},
            ]
            a = sim.exchange(payloads)
            b = shm.exchange(payloads)
            for dst in range(3):
                assert list(a[dst]) == list(b[dst])  # same src order
                for src in a[dst]:
                    assert np.array_equal(a[dst][src], b[dst][src])
            assert sim.log.diff(shm.log) is None
        finally:
            shm.close()
        _no_leaks()
