"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import delaunay_mesh, grid_2d, grid_3d, mesh_like


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_grid():
    """8x6 grid: 48 vertices, deterministic."""
    return grid_2d(8, 6)


@pytest.fixture(scope="session")
def grid3d_small():
    return grid_3d(5, 4, 3)


@pytest.fixture(scope="session")
def mesh500():
    """Irregular 500-vertex mesh-like graph (session-cached)."""
    return mesh_like(500, seed=7)


@pytest.fixture(scope="session")
def mesh2000():
    """Irregular 2000-vertex mesh-like graph (session-cached)."""
    return mesh_like(2000, seed=11)


@pytest.fixture(scope="session")
def tri800():
    """Delaunay triangle mesh with 800 vertices (session-cached)."""
    return delaunay_mesh(800, seed=3)
