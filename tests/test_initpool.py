"""The initial-bisection process pool: bit-identity to the in-process
path and the ship-once marshalling protocol.

The headline invariant: the pool generates the full deduped candidate set
up front and the caller replays the same sequential plateau walk over the
ordered results, so ``init_workers=N`` never changes the partition -- only
the wall clock.  One test spawns a real 2-worker pool (spawn context, so
it works under pytest); everything else uses the inline ``workers=0``
degenerate, which exercises the identical batch/replay machinery without
paying a process start.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import mesh_like
from repro.initpart import initial_bisection
from repro.initpart.pool import InitPool
from repro.partition import part_graph
from repro.refine.fm2way import fm2way_refine
from repro.weights import random_vwgt


@pytest.fixture
def small_graph():
    g = mesh_like(150, seed=21)
    return g.with_vwgt(random_vwgt(150, 2, low=1, high=9, seed=21))


def _candidates(graph, count, seed):
    rng = np.random.default_rng(seed)
    return [(rng.random(graph.nvtxs) > 0.5).astype(np.int64)
            for _ in range(count)]


class TestInlineBatch:
    def test_workers0_matches_direct_refine(self, small_graph):
        """InitPool(0).refine_batch == a plain fm2way_refine loop."""
        cands = _candidates(small_graph, 6, seed=3)
        pool = InitPool(0)
        batched = pool.refine_batch(
            small_graph, [w.copy() for w in cands],
            target_fracs=(0.5, 0.5), ubvec=1.05, npasses=6)
        for w0, (w_pool, st) in zip(cands, batched):
            w_direct = w0.copy()
            st_direct = fm2way_refine(
                small_graph, w_direct,
                target_fracs=(0.5, 0.5), ubvec=1.05, npasses=6)
            assert np.array_equal(w_pool, w_direct)
            assert st.final_cut == st_direct.final_cut
            assert st.feasible == st_direct.feasible

    def test_counters_accumulate(self, small_graph):
        pool = InitPool(0)
        pool.refine_batch(small_graph, _candidates(small_graph, 4, seed=1),
                          target_fracs=(0.5, 0.5), ubvec=1.05, npasses=2)
        c = pool.counters()
        assert c["initpart.pool.batches"] == 1
        assert c["initpart.pool.candidates"] == 4
        # Inline mode never ships anything.
        assert c["initpart.pool.ship.full"] == 0
        assert c["initpart.pool.ship.token"] == 0

    def test_empty_batch(self, small_graph):
        assert InitPool(0).refine_batch(
            small_graph, [], target_fracs=(0.5, 0.5),
            ubvec=1.05, npasses=2) == []


class TestBitIdentity:
    def test_initial_bisection_pool_vs_none(self, small_graph):
        """Passing an inline pool reproduces the no-pool walk exactly."""
        a = initial_bisection(small_graph, ntries=4, seed=8)
        b = initial_bisection(small_graph, ntries=4, seed=8, pool=InitPool(0))
        assert np.array_equal(a, b)

    def test_part_graph_init_workers_zero(self, small_graph):
        """The options front-door: init_workers=0 is the default path."""
        a = part_graph(small_graph, 4, seed=6)
        b = part_graph(small_graph, 4, seed=6, init_workers=0)
        assert np.array_equal(a.part, b.part)
        assert a.edgecut == b.edgecut

    def test_spawned_pool_bit_identity(self, small_graph):
        """One real spawn: 2 workers refine the same candidates to the
        same answers, and the ship-once protocol sends the graph with the
        first chunks only."""
        cands = _candidates(small_graph, 6, seed=3)
        inline = InitPool(0).refine_batch(
            small_graph, [w.copy() for w in cands],
            target_fracs=(0.5, 0.5), ubvec=1.05, npasses=6)
        pool = InitPool(2)
        try:
            spawned = pool.refine_batch(
                small_graph, [w.copy() for w in cands],
                target_fracs=(0.5, 0.5), ubvec=1.05, npasses=6)
            # Second batch on the same graph rides the token path.
            again = pool.refine_batch(
                small_graph, [w.copy() for w in cands],
                target_fracs=(0.5, 0.5), ubvec=1.05, npasses=6)
        finally:
            pool.close()
        for (wi, sti), (ws, sts), (wa, sta) in zip(inline, spawned, again):
            assert np.array_equal(wi, ws)
            assert np.array_equal(wi, wa)
            assert sti.final_cut == sts.final_cut == sta.final_cut
            assert sti.feasible == sts.feasible == sta.feasible
        c = pool.counters()
        assert c["initpart.pool.batches"] == 2
        assert c["initpart.pool.ship.full"] >= 1
        assert c["initpart.pool.ship.token"] >= 1
        # Worker telemetry shipped back alongside the results: one labeled
        # refine-latency histogram per worker pid (one observation per
        # chunk), every candidate accounted for exactly once.
        m = pool.metrics()
        hists = {k: v for k, v in m["histograms"].items()
                 if k.startswith("initpart.pool.worker.refine_seconds")}
        assert hists and all('worker="' in k for k in hists)
        assert sum(v["count"] for v in hists.values()) == 4  # 2 batches x 2
        cand = sum(v for k, v in m["counters"].items()
                   if "candidates" in k)
        assert cand == 12


class TestWorkerTelemetry:
    def test_inline_pool_labels_worker_inline(self, small_graph):
        pool = InitPool(0)
        pool.refine_batch(small_graph, _candidates(small_graph, 3, seed=5),
                          target_fracs=(0.5, 0.5), ubvec=1.05, npasses=2)
        m = pool.metrics()
        key = 'initpart.pool.worker.refine_seconds{worker="inline"}'
        assert m["histograms"][key]["count"] == 1  # one inline batch
        assert m["counters"][
            'initpart.pool.worker.candidates{worker="inline"}'] == 3
